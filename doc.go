// Package klsm provides a lock-free, relaxed concurrent priority queue based
// on log-structured merge-trees, implementing "The Lock-free k-LSM Relaxed
// Priority Queue" (Wimmer, Gruber, Träff, Tsigas; PPoPP 2015,
// arXiv:1503.05698).
//
// # Semantics
//
// The queue stores uint64 keys (smaller = higher priority) with an arbitrary
// payload. DeleteMin is relaxed: with T active handles and relaxation
// parameter k, it returns one of the T·k+1 smallest keys — a fixed,
// runtime-configurable worst-case bound, unlike heuristic relaxed queues.
// Two properties sharpen this:
//
//   - Local ordering: keys inserted and deleted by the same handle behave
//     exactly like a strict priority queue; a handle never skips its own keys.
//   - With k = 0 and a single handle, the queue is an exact priority queue.
//
// All operations are lock-free: a stalled goroutine cannot block others.
//
// # Handles
//
// Every goroutine using the queue needs its own Handle (the paper's
// "thread"); handles hold the thread-local batching structures, so they must
// not be shared between concurrently running goroutines:
//
//	q := klsm.New[string]()
//	h := q.NewHandle()
//	h.Insert(42, "answer")
//	key, val, ok := h.TryDeleteMin()
//
// TryDeleteMin may fail spuriously under concurrent modification; callers
// that know items remain (for example via application-level in-flight
// counting) simply retry.
//
// # v2 surface: ordered keys, handle-free operations, batches
//
// Three layers extend the raw engine shape (all composable, none mandatory):
//
//   - Ordered keys. NewOrdered wraps a queue in an order-preserving KeyCodec
//     so callers stop hand-packing priorities into uint64: built-in codecs
//     cover uint64, int64, float64 (IEEE totalOrder: NaNs at the extremes,
//     -0 < +0), time.Time, and string prefixes; custom codecs plug in by
//     implementing the two-method interface (CheckKeyCodec self-checks the
//     order contract). The engine never sees K — every guarantee carries
//     over verbatim to the codec's order.
//   - Handle-free operations. Queue.Insert, Queue.TryDeleteMin,
//     Queue.PeekMin and the batch variants borrow a registered handle from
//     an internal registry per call: no setup, safe from any goroutine, and
//     ρ = T·k stays bounded by the peak concurrency of handle-free calls
//     rather than goroutine churn. Explicit handles remain the fast path.
//   - Batch operations. Handle.InsertBatch sorts a batch once and publishes
//     it as a single block at level ⌈log₂n⌉ — one merge cascade instead of n
//     (the LSM's internal batching of §4.1, surfaced); Handle.DrainMin pops
//     up to n items per call through the persistent candidate window. Both
//     preserve the relaxation bound for every batch size.
//
// # Choosing k
//
// k trades ordering quality for scalability. k = 0 is strict but serializes
// on the shared structure; the paper's evaluation finds k = 256 a good
// general-purpose setting and uses k up to 4096 for maximum throughput.
// See the benchmarks in bench_test.go, which regenerate the paper's figures.
//
// # Memory pooling and item reclamation (§4.4)
//
// By default the queue recycles its internal blocks and item wrappers
// through per-handle free lists, the Go translation of the paper's §4.4
// memory-management scheme: items carry versioned deletion flags (so reuse
// is ABA-safe), private blocks recycle the moment a merge retires them, and
// published blocks are reclaimed once epoch stamps and a reader guard prove
// no spying thread can still hold a pointer. On top of that, the full §4.4
// scheme reference-counts items at block-lineage granularity
// (WithItemReclamation, default on): a reference is acquired once when an
// item enters the structure, transferred — not re-acquired — through every
// local merge, and released once when its lineage dies; when the last
// reference on a deleted item drops, the item returns to a per-handle free
// list and is reused by a later insert — deterministic reclamation instead
// of waiting for the garbage collector, at throughput parity with the
// GC-backstopped mode (see BenchmarkAblationReclaim). Steady-state
// Insert/TryDeleteMin run nearly allocation-free (see
// BenchmarkAblationPooling). WithPooling(false) disables recycling
// entirely and WithItemReclamation(false) keeps only the GC-backstopped
// block layer; semantics are identical in every mode.
//
// # Delete-min fast path
//
// On top of the pooling layer, each handle caches the minima of its local
// batching structure per block and its shared-structure candidate window
// across TryDeleteMin calls. The window is maintained incrementally — a
// shared-structure change re-materializes only the candidates it added,
// not the whole O(k) set — and feeds a small per-handle deletion buffer
// (WithDeletionBuffer): candidates from both structures are staged locally
// and the common delete is a buffer pop whose only shared-state touches
// are one pointer check and the claiming CAS. A sticky skip-shared hint
// (WithStickyHint) lets runs of deletes whose minimum is handle-local skip
// the shared structure entirely, re-validated against each newly published
// array's minimum-key floor. In the steady state a delete-min is a handful
// of key compares instead of a rescan of both structures (see
// BenchmarkAblationMinCache and DESIGN.md). All three are pure caches over
// the same take-CAS protocol: the ρ = T·k bound, local ordering, and
// exactly-once deletion are identical with any of them disabled
// (WithMinCaching(false), WithDeletionBuffer(0), WithStickyHint(0)).
//
// # Lazy deletion and the merge filter
//
// NewWithDrop / NewOrderedWithDrop install a drop filter consulted during
// block merges: items the filter reports stale are physically discarded by
// the merge instead of ever surfacing from a delete. SetMergeFilter
// installs or replaces it at runtime, Handle.Compact force-merges both
// structures down to filtered single blocks, and Queue.Footprint reports
// physical occupancy (which under filtering is the meaningful size —
// logical Size drifts as merges drop items). These hooks are what the
// timerq subsystem builds its lazy cancellation on: cancelled timers
// become registry tombstones that merges reclaim for free (see the timerq
// package and DESIGN.md "Timer subsystem").
//
// # Durability
//
// Open (and OpenOrdered) returns a persistent queue rooted at a directory:
// every insert and delete appends a CRC32C-framed record to a write-ahead
// log, and reopening the directory recovers exactly the logically live
// items. Logging is write-behind with group commit — operations append to
// an in-memory buffer and never block on disk; a background writer batches
// records to the file and fsyncs on the WithSyncInterval /
// WithSyncEvery policy (default: at most 2ms after an unsynced append). The
// durability contract is explicit: an operation is guaranteed to survive a
// crash once a Sync call covering it returns nil. Acknowledged inserts are
// recovered exactly once; operations after the last acknowledgement may be
// lost (unacked inserts) or redelivered (unacked deletes) — at-least-once
// delivery, like any write-behind log.
//
// Checkpoint compacts the log without stopping the queue: it rotates the
// WAL (publishing a manifest that freezes the old file), merges the frozen
// records with the existing segments into fresh sorted segment files, and
// publishes the result with a second atomically renamed MANIFEST — safe to
// run concurrently with inserts and deletes, and crash-safe at every
// intermediate cut. WithAutoCheckpoint runs it automatically on size/age
// triggers and sweeps orphaned files. Recovery loads each segment as one
// block publication (the batch-insert path), so reopening a queue of a
// million items takes on the order of a second. Torn tails from
// a crash are detected by checksum and truncated silently; provable mid-log
// corruption is refused with ErrCorruptWAL / ErrCorruptCheckpoint — never a
// panic, never silent loss. See DESIGN.md "Durability" for the framing,
// the recovery soundness argument, and the crash-stress methodology.
package klsm
