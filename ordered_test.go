package klsm

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"klsm/internal/xrand"
)

// TestOrderedFloat64Queue drains a strict (k=0) float64 queue and expects
// exact float order, specials included.
func TestOrderedFloat64Queue(t *testing.T) {
	q := NewOrdered[float64, string](Float64Key(), WithRelaxation(0))
	h := q.NewHandle()
	keys := []float64{3.5, math.Inf(-1), -0.25, 1e300, math.Inf(1), 0, -1e-300}
	for _, k := range keys {
		h.Insert(k, "v")
	}
	var got []float64
	for {
		k, _, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != len(keys) {
		t.Fatalf("drained %d of %d", len(got), len(keys))
	}
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("k=0 float drain not sorted: %v", got)
	}
}

// TestOrderedTimeQueue checks deadline ordering through TimeKey, with
// PeekMin agreeing with the subsequent TryDeleteMin on a quiescent queue.
func TestOrderedTimeQueue(t *testing.T) {
	q := NewOrdered[time.Time, int](TimeKey(), WithRelaxation(0))
	h := q.NewHandle()
	base := time.Date(2026, 7, 26, 12, 0, 0, 0, time.UTC)
	for _, off := range []int{5, 1, 9, 3} {
		h.Insert(base.Add(time.Duration(off)*time.Minute), off)
	}
	pk, pv, ok := h.PeekMin()
	if !ok || pv != 1 || !pk.Equal(base.Add(time.Minute)) {
		t.Fatalf("PeekMin = (%v, %d, %v)", pk, pv, ok)
	}
	k, v, ok := h.TryDeleteMin()
	if !ok || v != 1 || !k.Equal(base.Add(time.Minute)) {
		t.Fatalf("TryDeleteMin = (%v, %d, %v)", k, v, ok)
	}
	if q.Size() != 3 {
		t.Fatalf("Size = %d", q.Size())
	}
}

// TestOrderedBatchAndHandleFree mixes every access style on one int64
// queue — ordered handles, ordered handle-free ops, batch insert and drain —
// and verifies conservation of the multiset.
func TestOrderedBatchAndHandleFree(t *testing.T) {
	q := NewOrdered[int64, int](Int64Key(), WithRelaxation(8))
	h := q.NewHandle()
	rng := xrand.NewSeeded(77)
	want := map[int64]int{}
	batch := make([]int64, 200)
	for i := range batch {
		batch[i] = int64(rng.Uint64())
		want[batch[i]]++
	}
	h.InsertBatch(batch, nil)
	q.InsertBatch(batch[:50], nil) // handle-free batch
	for _, k := range batch[:50] {
		want[k]++
	}
	q.Insert(-42, 1) // handle-free single
	want[-42]++
	total := 251
	got := 0
	// Handle-free drains and pops, interleaved with handle drains.
	for got < total {
		kvs := q.DrainMin(nil, 7)
		for _, kv := range kvs {
			want[kv.Key]--
			if want[kv.Key] < 0 {
				t.Fatalf("key %d over-returned", kv.Key)
			}
			got++
		}
		kvs2 := h.DrainMin(nil, 5)
		for _, kv := range kvs2 {
			want[kv.Key]--
			if want[kv.Key] < 0 {
				t.Fatalf("key %d over-returned", kv.Key)
			}
			got++
		}
		if k, _, ok := q.TryDeleteMin(); ok {
			want[k]--
			if want[k] < 0 {
				t.Fatalf("key %d over-returned", k)
			}
			got++
		}
		if len(kvs) == 0 && len(kvs2) == 0 {
			break
		}
	}
	if got != total {
		t.Fatalf("drained %d of %d", got, total)
	}
	for k, n := range want {
		if n != 0 {
			t.Fatalf("key %d left %d times", k, n)
		}
	}
}

// TestOrderedWithDrop routes the lazy-deletion callback through the codec:
// the callback must observe decoded keys.
func TestOrderedWithDrop(t *testing.T) {
	stale := map[int64]bool{-7: true, 3: true}
	q := NewOrderedWithDrop[int64, int](Int64Key(), func(k int64, _ int) bool {
		return stale[k]
	}, WithRelaxation(4))
	h := q.NewHandle()
	for _, k := range []int64{-7, -1, 3, 8} {
		h.Insert(k, 0)
	}
	var got []int64
	for {
		k, _, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != 2 || got[0] != -1 || got[1] != 8 {
		t.Fatalf("drop through codec failed: got %v", got)
	}
}

// TestHandleFreeRegistryBoundsRho is the ρ-boundedness regression for the
// handle registry: sequential handle-free operations from arbitrarily many
// goroutines must reuse one registry handle — T (and so ρ = T·k) must not
// grow with goroutine churn — and concurrent use must stay bounded by the
// peak concurrency, not the goroutine count.
func TestHandleFreeRegistryBoundsRho(t *testing.T) {
	const k = 16
	q := New[int](WithRelaxation(k))
	// 500 sequential "goroutine lifetimes" of handle-free ops.
	for g := 0; g < 500; g++ {
		q.Insert(uint64(g), g)
		if _, _, ok := q.TryDeleteMin(); !ok {
			t.Fatalf("lifetime %d: queue unexpectedly empty", g)
		}
	}
	if rho := q.Rho(); rho != k {
		t.Fatalf("sequential handle-free ops grew ρ to %d (T=%d), want one registry handle", rho, rho/k)
	}
	// Concurrent churn: many short-lived goroutines, bounded concurrency.
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q.Insert(uint64(w*1000+i), i)
				q.TryDeleteMin()
			}
		}(w)
	}
	wg.Wait()
	if rho := q.Rho(); rho > workers*2*k {
		t.Fatalf("concurrent handle-free ops grew ρ to %d, want ≤ peak-concurrency bound %d", rho, workers*2*k)
	}
}

// TestHandleFreePanicReturnsHandle pins the borrow/return contract under
// panics: a handle-free operation that panics (here: the documented batch
// length-mismatch panic) must still return its borrowed handle, so
// recovered panics cannot grow ρ.
func TestHandleFreePanicReturnsHandle(t *testing.T) {
	q := New[int](WithRelaxation(8))
	q.Insert(1, 1) // materialize the registry handle
	base := q.Rho()
	for i := 0; i < 10; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("length mismatch did not panic")
				}
			}()
			q.InsertBatch([]uint64{1, 2}, []int{1})
		}()
	}
	q.Insert(2, 2)
	if q.Rho() != base {
		t.Fatalf("ρ grew from %d to %d across recovered panics (handle leaked)", base, q.Rho())
	}
}

// TestNilCodecPanics pins the NewOrdered validation.
func TestNilCodecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil codec did not panic")
		}
	}()
	NewOrdered[uint64, int](nil)
}

// TestSetRelaxationValidation is the public-layer regression for the
// SetRelaxation contract: negative k panics (on every mode), absurd k is
// clamped to MaxRelaxation, and the queue remains usable afterwards.
func TestSetRelaxationValidation(t *testing.T) {
	q := New[int]()
	q.SetRelaxation(math.MaxInt)
	if q.K() != MaxRelaxation {
		t.Fatalf("K = %d after absurd SetRelaxation, want clamp to %d", q.K(), MaxRelaxation)
	}
	h := q.NewHandle()
	h.Insert(7, 0)
	if k, _, ok := h.TryDeleteMin(); !ok || k != 7 {
		t.Fatalf("queue unusable after clamp: (%d, %v)", k, ok)
	}
	if q.Rho() < 0 {
		t.Fatalf("Rho overflowed: %d", q.Rho())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SetRelaxation(-1) did not panic")
			}
		}()
		q.SetRelaxation(-1)
	}()
	// New clamps identically.
	if qc := New[int](WithRelaxation(math.MaxInt)); qc.K() != MaxRelaxation {
		t.Fatalf("New K = %d, want %d", qc.K(), MaxRelaxation)
	}
	// DistOnly queues validate too, though the value is otherwise ignored.
	dq := New[int](WithDistributedOnly())
	defer func() {
		if recover() == nil {
			t.Fatal("DistOnly SetRelaxation(-1) did not panic")
		}
	}()
	dq.SetRelaxation(-1)
}
