package klsm

// Stats is a snapshot of the queue's structural counters, aggregated across
// all open handles. It exposes the internals the delete-min fast path is
// tuned by — candidate-window maintenance cost, deletion-buffer hit rates,
// skip-shared stickiness — alongside the structural event counts of the
// paper's ablations. The snapshot is taken without stopping the queue, so
// counters from handles mid-operation may be one event behind; counters of
// closed handles are not included.
type Stats struct {
	// Handles is the number of registered handles (T in ρ = T·k).
	Handles int
	// Inserted and Deleted are the lifetime operation totals of the open
	// handles.
	Inserted int64
	// Deleted counts successful delete-min operations.
	Deleted int64
	// Merges counts block merges across the per-handle structures.
	Merges int64
	// Overflows counts blocks transferred from per-handle structures to the
	// shared k-LSM (the batching frequency of paper §4.3).
	Overflows int64
	// Spies counts successful spy operations and SpiedBlocks the blocks
	// they copied (paper §4.2).
	Spies int64
	// SpiedBlocks counts blocks copied by spy operations.
	SpiedBlocks int64
	// SpyCalls counts delete-min rounds that resorted to spying.
	SpyCalls int64
	// Consolidates counts per-handle consolidation passes.
	Consolidates int64
	// SharedConsolidatePushes counts successfully published consolidations
	// of the shared k-LSM.
	SharedConsolidatePushes int64
	// SharedInsertRetries counts failed shared-insert CAS attempts (the
	// contention measure of paper §4.1).
	SharedInsertRetries int64
	// WindowBuilds counts full candidate-window materializations and
	// WindowRepairs incremental ones; WindowItems is the total number of
	// candidate entries materialized by either. WindowItems/Deleted is the
	// per-delete window cost the incremental window keeps bounded at
	// large k.
	WindowBuilds int64
	// WindowRepairs counts incremental candidate-window repairs.
	WindowRepairs int64
	// WindowItems counts candidate entries materialized into windows.
	WindowItems int64
	// BufferFills counts deletion-buffer refills, BufferPops deletes served
	// straight from the buffer, and BufferFlushes invalidations that
	// discarded unconsumed buffered candidates.
	BufferFills int64
	// BufferPops counts deletes served from the deletion buffer.
	BufferPops int64
	// BufferFlushes counts deletion-buffer invalidation flushes.
	BufferFlushes int64
	// HintSkips counts shared-side queries skipped on a valid skip-shared
	// hint; HintSticks is the sticky subset, granted by minimum-key
	// re-validation across a shared publication.
	HintSkips int64
	// HintSticks counts sticky cross-publication hint re-validations.
	HintSticks int64
}

// Stats returns an aggregated snapshot of the queue's structural counters;
// see Stats for the fields. Safe to call concurrently with operations.
func (q *Queue[V]) Stats() Stats {
	s := q.q.Stats()
	return Stats{
		Handles:                 s.Handles,
		Inserted:                s.Inserted,
		Deleted:                 s.Deleted,
		Merges:                  s.Merges,
		Overflows:               s.Overflows,
		Spies:                   s.Spies,
		SpiedBlocks:             s.SpiedBlocks,
		SpyCalls:                s.SpyCalls,
		Consolidates:            s.Consolidates,
		SharedConsolidatePushes: s.SharedConsolidatePushes,
		SharedInsertRetries:     s.SharedInsertRetries,
		WindowBuilds:            s.WindowBuilds,
		WindowRepairs:           s.WindowRepairs,
		WindowItems:             s.WindowItems,
		BufferFills:             s.BufferFills,
		BufferPops:              s.BufferPops,
		BufferFlushes:           s.BufferFlushes,
		HintSkips:               s.HintSkips,
		HintSticks:              s.HintSticks,
	}
}
