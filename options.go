package klsm

import (
	"time"

	"klsm/internal/core"
)

// options collects the non-generic configuration set by Option values.
type options struct {
	k             int
	mode          core.Mode
	localOrdering bool
	pooling       bool
	minCaching    bool
	reclaim       bool
	delBuf        int
	stickyOps     int

	// Durability (Open-only; New panics when persistDir is set).
	persistDir   string
	syncEvery    int
	syncInterval time.Duration
	walBuffer    int
	walCoalesce  int
	ckptWALBytes int64
	ckptInterval time.Duration
}

// Option configures New.
//
// One configuration knob deliberately does not travel through Option: the
// merge filter (lazy-deletion callback), whose type is generic in V. Wire it
// at construction with NewWithDrop / NewOrderedWithDrop, or after
// construction — but before the first handle — with Queue.SetMergeFilter /
// OrderedQueue.SetMergeFilter when the filter closes over state built
// around the queue (timerq's cancellation registry is the canonical case).
type Option func(*options)

// WithRelaxation sets the relaxation parameter k: TryDeleteMin returns one
// of the T·k+1 smallest keys, T being the number of handles. k = 0 yields
// the strictest ordering (and the least scalability). Panics are deferred
// to New for negative k.
func WithRelaxation(k int) Option {
	return func(o *options) { o.k = k }
}

// WithDistributedOnly selects the standalone distributed LSM (the DLSM
// configuration in the paper's Figure 3): thread-local queues with
// non-destructive spying. It scales best but provides only local ordering —
// no global relaxation bound.
func WithDistributedOnly() Option {
	return func(o *options) { o.mode = core.DistOnly }
}

// WithSharedOnly bypasses insertion batching: every insert goes directly to
// the shared k-LSM. Mostly useful for benchmarking the shared component in
// isolation.
func WithSharedOnly() Option {
	return func(o *options) { o.mode = core.SharedOnly }
}

// WithoutLocalOrdering disables the Bloom-filter check that guarantees a
// handle never skips its own keys. The ρ = T·k bound still holds. This
// exists for the ablation benchmarks; applications should keep local
// ordering on.
func WithoutLocalOrdering() Option {
	return func(o *options) { o.localOrdering = false }
}

// WithPooling toggles the §4.4 block/item recycling free lists (default
// on). With pooling enabled every handle keeps per-level block pools and an
// item slab allocator, recycling retired memory once it is provably
// unreachable from every published structure; steady-state insert and
// delete-min then run nearly allocation-free. Disabling it exists for the
// allocation ablation benchmarks and as an escape hatch: semantics are
// identical either way.
func WithPooling(enabled bool) Option {
	return func(o *options) { o.pooling = enabled }
}

// WithItemReclamation toggles the §4.4 deterministic item-reclamation
// scheme (default on). With it enabled, items are reference-counted at
// block-lineage granularity: a reference is acquired when an item enters
// the structure, transferred through every local merge instead of being
// re-acquired, and released when its lineage dies — under the same
// quiescence proofs that govern block reuse. When the last reference on a
// deleted item drops, it returns to a per-handle free list and is reused
// by a later insert, instead of waiting for the garbage collector.
// Disabling it keeps block pooling but leaves deleted items to the GC (the
// ablation baseline and an escape hatch); semantics are identical either
// way. Reclamation requires pooling: with WithPooling(false) this option
// has no effect and items are always GC-reclaimed.
func WithItemReclamation(enabled bool) Option {
	return func(o *options) { o.reclaim = enabled }
}

// WithMinCaching toggles the delete-min fast path (default on): each handle
// caches its DistLSM's per-block minima and its shared-k-LSM candidate
// window across TryDeleteMin calls, invalidating precisely on the mutations
// that can change them, so a steady-state delete-min costs O(1) instead of a
// rescan of both structures. Semantics — the ρ = T·k relaxation bound and
// local ordering — are identical either way; disabling exists for the
// ablation benchmarks and as an escape hatch.
func WithMinCaching(enabled bool) Option {
	return func(o *options) { o.minCaching = enabled }
}

// WithDeletionBuffer sets the per-handle deletion-buffer capacity (default
// 32). TryDeleteMin refills a small owner-local buffer of version-validated
// candidates from the shared candidate window and the handle's local min
// scan in one pass, so the common delete is a buffer pop with a single
// shared-pointer check — the MultiQueue-style deletion-buffer idea grafted
// onto the k-LSM. Buffered candidates are never logically deleted until
// popped, so the ρ = T·k relaxation bound and local ordering hold exactly as
// without the buffer; any event that could undercut a buffered key (an
// insert by this handle, a spy, a meld, any shared-structure publication)
// discards the buffer. n <= 0 disables the buffer. The buffer requires min
// caching: with WithMinCaching(false) it is implicitly disabled.
func WithDeletionBuffer(n int) Option {
	return func(o *options) { o.delBuf = n }
}

// WithPersistence declares the directory a persistent queue lives in. It is
// default-off and only meaningful through Open, which already takes the
// directory — the option exists so option lists can be built and passed
// around uniformly. New panics when it is set, directing callers to Open:
// the value codec persistence requires is generic and cannot travel through
// the non-generic Option type.
func WithPersistence(dir string) Option {
	return func(o *options) { o.persistDir = dir }
}

// WithSyncEvery sets the count half of the WAL group-commit policy: an
// fsync is issued once this many records have been appended since the last
// one (0 disables count-based syncing; the default). Explicit Sync calls
// and Close always force an fsync regardless.
func WithSyncEvery(n int) Option {
	return func(o *options) { o.syncEvery = n }
}

// WithSyncInterval sets the time half of the WAL group-commit policy: an
// fsync is issued at most d after an unsynced append, bounding how long an
// unacknowledged operation can linger (default 2ms; 0 disables timer-based
// syncing, leaving only WithSyncEvery, explicit Sync and Close). Smaller
// intervals tighten the durability window and cost proportionally more
// fsyncs; group commit means each fsync still covers every record appended
// since the previous one.
func WithSyncInterval(d time.Duration) Option {
	return func(o *options) {
		o.syncInterval = d
		if d <= 0 {
			o.syncInterval = -1 // explicit off; resolveOptions maps to 0
		}
	}
}

// WithWALBuffer sets the WAL's in-memory pending-buffer high-water mark in
// bytes (default 4 MiB): appends block — in memory, never on disk — once
// this much encoded data awaits the background writer.
func WithWALBuffer(bytes int) Option {
	return func(o *options) { o.walBuffer = bytes }
}

// WithWriteCoalesce sets the WAL writer's batch growth target in bytes
// (default 256 KiB): after taking a batch, the writer keeps folding in
// records that mutators appended meanwhile until the batch reaches this
// size or no more are waiting, then issues one write() for the whole run.
// Coalescing never delays a record — it only gathers work that already
// exists — so larger values trade nothing but memory for fewer syscalls.
// Negative disables coalescing (one write per buffer swap).
func WithWriteCoalesce(bytes int) Option {
	return func(o *options) { o.walCoalesce = bytes }
}

// WithAutoCheckpoint enables the automatic checkpoint scheduler on a queue
// opened by Open: a background goroutine checkpoints once the live WAL
// exceeds maxWALBytes (0 disables the size trigger) or maxAge has passed
// since the last checkpoint while unlogged-to-segment work exists (0
// disables the age trigger), and sweeps orphaned files on a timer. Both
// zero — the default — leaves checkpointing fully manual. Automatic
// checkpoints run concurrently with queue operations (see Checkpoint) and
// bound recovery cost for long-running queues: replay work stays
// proportional to the live items plus one WAL's worth of tail, not to the
// operation history.
func WithAutoCheckpoint(maxWALBytes int64, maxAge time.Duration) Option {
	return func(o *options) {
		o.ckptWALBytes = maxWALBytes
		o.ckptInterval = maxAge
	}
}

// WithStickyHint sets the sticky skip-shared budget (default 64): how many
// consecutive deletes may skip querying the shared structure across its
// publications, each skip re-validated against the newly published array's
// minimum-key floor (a skip is granted only when that floor proves the
// shared side holds no key below the handle's local minimum — the ρ bound
// and local ordering hold unconditionally). Larger budgets keep delete-min
// local for longer on workloads whose small keys are handle-local;
// the budget bounds how long a handle may defer its share of shared-side
// maintenance. ops <= 0 disables stickiness, reverting to the exact
// same-array hint. Requires min caching, like the hint itself.
func WithStickyHint(ops int) Option {
	return func(o *options) { o.stickyOps = ops }
}
