// SSSP example: parallel single-source shortest paths with the public API,
// the application the paper's Figure 4 benchmarks.
//
// Run with:
//
//	go run ./examples/sssp
//
// The program builds a random layered road-network-like graph, then runs a
// label-correcting Dijkstra over a k-LSM queue with several workers. It
// demonstrates the two techniques of paper §4.5/§6:
//
//   - re-insertion instead of decrease-key: a better distance label is just
//     inserted again; and
//   - lazy deletion: a Drop callback tells the queue which entries have
//     become stale so it can discard them during maintenance instead of
//     handing them back.
//
// The result is verified against a sequential Dijkstra.
package main

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"klsm"
)

// edge is one weighted directed edge.
type edge struct {
	to uint32
	w  uint32
}

// buildGraph generates a connected layered random graph.
func buildGraph(n int, degree int, seed int64) [][]edge {
	rng := rand.New(rand.NewSource(seed))
	g := make([][]edge, n)
	for u := 0; u < n; u++ {
		// A chain edge keeps everything reachable...
		if u+1 < n {
			g[u] = append(g[u], edge{to: uint32(u + 1), w: uint32(1 + rng.Intn(100))})
		}
		// ...plus random shortcuts.
		for d := 0; d < degree; d++ {
			v := rng.Intn(n)
			if v != u {
				g[u] = append(g[u], edge{to: uint32(v), w: uint32(1 + rng.Intn(10000))})
			}
		}
	}
	return g
}

const unreached = ^uint64(0)

// value payload carried with each queue entry.
type entry struct {
	node uint32
}

func main() {
	const (
		n       = 20000
		degree  = 8
		k       = 256
		workers = 4
	)
	g := buildGraph(n, degree, 1)

	dist := make([]atomic.Uint64, n)
	for i := range dist {
		dist[i].Store(unreached)
	}
	dist[0].Store(0)

	// Lazy deletion: an entry is stale if its distance no longer matches
	// the best-known label for its node.
	stale := func(key uint64, v entry) bool {
		return key > dist[v.node].Load()
	}
	q := klsm.NewWithDrop[entry](stale, klsm.WithRelaxation(k))

	seed := q.NewHandle()
	seed.Insert(0, entry{node: 0})

	// Termination by idle consensus: a worker that sees the queue empty
	// registers as idle and keeps probing; when all workers are idle at
	// once, nothing is queued and nothing is being processed, so no new
	// entry can appear. (A queued-entry counter would leak here: the Drop
	// callback discards stale entries inside the queue, so they are never
	// popped.)
	var idle atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			process := func(d uint64, e entry) {
				if d > dist[e.node].Load() {
					return // stale entry the Drop callback did not catch yet
				}
				for _, ed := range g[e.node] {
					nd := d + uint64(ed.w)
					for {
						cur := dist[ed.to].Load()
						if nd >= cur {
							break
						}
						if dist[ed.to].CompareAndSwap(cur, nd) {
							h.Insert(nd, entry{node: ed.to})
							break
						}
					}
				}
			}
			// Pop in small batches (v2 DrainMin): relaxed semantics already
			// allow processing several near-minimal entries per round, so a
			// batch drain amortizes the candidate-window work across pops
			// without changing the algorithm.
			var batch []klsm.KV[uint64, entry]
			drain := func() int {
				batch = h.DrainMin(batch[:0], 8)
				for _, kv := range batch {
					process(kv.Key, kv.Value)
				}
				return len(batch)
			}
			for {
				if drain() > 0 {
					continue
				}
				idle.Add(1)
				for {
					batch = h.DrainMin(batch[:0], 8)
					if len(batch) > 0 {
						idle.Add(-1)
						for _, kv := range batch {
							process(kv.Key, kv.Value)
						}
						break
					}
					if idle.Load() == workers {
						return
					}
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify against a sequential Dijkstra.
	want := sequentialDijkstra(g, 0)
	for v := 0; v < n; v++ {
		if dist[v].Load() != want[v] {
			fmt.Printf("MISMATCH at node %d: parallel %d, sequential %d\n", v, dist[v].Load(), want[v])
			return
		}
	}
	sum := uint64(0)
	reached := 0
	for v := 0; v < n; v++ {
		if d := dist[v].Load(); d != unreached {
			sum += d
			reached++
		}
	}
	fmt.Printf("SSSP over %d nodes with %d workers (k=%d): %v\n", n, workers, k, elapsed)
	fmt.Printf("reached %d nodes, distance checksum %d — matches sequential Dijkstra\n", reached, sum)
}

// --- sequential oracle -----------------------------------------------------

type pqItem struct {
	dist uint64
	node uint32
}
type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	it := old[len(old)-1]
	*p = old[:len(old)-1]
	return it
}

func sequentialDijkstra(g [][]edge, src uint32) []uint64 {
	dist := make([]uint64, len(g))
	for i := range dist {
		dist[i] = unreached
	}
	dist[src] = 0
	h := &pq{{0, src}}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range g[it.node] {
			if nd := it.dist + uint64(e.w); nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(h, pqItem{nd, e.to})
			}
		}
	}
	return dist
}
