// Scheduler example: a deadline-driven task scheduler on the k-LSM, the
// workload class (prioritized schedulers, branch-and-bound) the paper's
// introduction motivates.
//
// Run with:
//
//	go run ./examples/scheduler
//
// A pool of workers continuously takes the most urgent task (earliest
// deadline = smallest key) and may spawn follow-up tasks, as schedulers do.
// Two properties of the k-LSM matter here:
//
//   - relaxed delete-min removes the scalability bottleneck: workers rarely
//     contend on the same task even though they all ask for "the most
//     urgent" one;
//   - local ordering means a worker that schedules a follow-up before
//     anything else is urgent will process it itself, in order — cache- and
//     locality-friendly, like the task-scheduling systems of Wimmer et al.
//
// The program measures tardiness: how far from the true deadline order
// tasks were started. With ρ = T·k bounded relaxation, tardiness is bounded
// too, in contrast to heuristically relaxed queues.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"klsm"
)

// task is a unit of work with a deadline; lower deadline = more urgent.
type task struct {
	id       int
	deadline uint64
	spawns   int // follow-up tasks this one creates
}

func main() {
	const (
		workers  = 4
		k        = 64
		rootTask = 2000
	)
	q := klsm.New[task](klsm.WithRelaxation(k))

	var (
		started   atomic.Int64 // tasks begun
		completed atomic.Int64
		inflight  atomic.Int64
		// maxLate tracks the worst observed start-order inversion in
		// deadline units.
		maxLate atomic.Uint64
		// clock is the largest deadline whose task has started; a task
		// starting with deadline < clock started "late" relative to strict
		// deadline order.
		clock atomic.Uint64
		idSeq atomic.Int64
	)

	// Seed the root tasks as one batch: InsertBatch sorts once and
	// publishes a single level-⌈log₂n⌉ block instead of rootTask level-0
	// merge cascades — the natural shape for bulk-loading a scheduler.
	seedKeys := make([]uint64, rootTask)
	seedTasks := make([]task, rootTask)
	for i := 0; i < rootTask; i++ {
		d := uint64(i * 10)
		spawns := 0
		if i%10 == 0 {
			spawns = 3
		}
		inflight.Add(1)
		seedKeys[i] = d
		seedTasks[i] = task{id: i, deadline: d, spawns: spawns}
	}
	seedHandle := q.NewHandle()
	seedHandle.InsertBatch(seedKeys, seedTasks)
	idSeq.Store(rootTask)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			for {
				deadline, t, ok := h.TryDeleteMin()
				if !ok {
					if inflight.Load() == 0 {
						return
					}
					continue
				}
				started.Add(1)
				// Track tardiness: if a later deadline already started, we
				// are early; if our deadline is far below the clock, the
				// relaxation delayed us.
				for {
					c := clock.Load()
					if deadline <= c {
						late := c - deadline
						for {
							m := maxLate.Load()
							if late <= m || maxLate.CompareAndSwap(m, late) {
								break
							}
						}
						break
					}
					if clock.CompareAndSwap(c, deadline) {
						break
					}
				}
				// "Execute" the task: spawn follow-ups slightly after our
				// deadline as one small batch, as schedulers chaining work
				// do (local ordering means this worker will tend to process
				// its own follow-ups, in order).
				if t.spawns > 0 {
					keys := make([]uint64, t.spawns)
					tasks := make([]task, t.spawns)
					for s := 0; s < t.spawns; s++ {
						nd := t.deadline + uint64(s+1)
						inflight.Add(1)
						keys[s] = nd
						tasks[s] = task{id: int(idSeq.Add(1)), deadline: nd}
					}
					h.InsertBatch(keys, tasks)
				}
				completed.Add(1)
				inflight.Add(-1)
			}
		}()
	}
	wg.Wait()

	fmt.Printf("completed %d tasks with %d workers (k=%d)\n", completed.Load(), workers, k)
	fmt.Printf("worst start-order tardiness: %d deadline units\n", maxLate.Load())
	fmt.Printf("relaxation bound rho = T*k = %d — tardiness stays bounded, unlike heuristic queues\n", q.Rho())
}
