// Quickstart: the smallest complete k-LSM program, on the v2 API.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It creates a queue, batch-inserts prioritized jobs from several
// goroutines, and drains them concurrently, illustrating the v2 surface:
// batch operations (InsertBatch publishes a whole batch as one block,
// DrainMin pops many items per call), handle-free queue-level operations
// for one-off access, and the two standing rules — one Handle per goroutine
// on the fast path, and TryDeleteMin's relaxed-but-bounded semantics.
package main

import (
	"fmt"
	"sort"
	"sync"

	"klsm"
)

func main() {
	// k = 16: every delete-min returns one of the (16 × #handles + 1)
	// smallest keys. Smaller k = stricter order, less scalability.
	q := klsm.New[string](klsm.WithRelaxation(16))

	// Handle-free operations need no setup — ideal for one-off access from
	// framework-managed goroutines. They borrow a registered handle from an
	// internal registry, so casual use never grows the relaxation bound.
	q.Insert(999, "a one-off job, inserted handle-free")

	const producers = 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := q.NewHandle() // one handle per goroutine — never share
			// A batch insert sorts once and publishes one block: the
			// LSM's internal batching surfaced at the API.
			keys := make([]uint64, 5)
			jobs := make([]string, 5)
			for i := range keys {
				keys[i] = uint64(id*5 + i)
				jobs[i] = fmt.Sprintf("job %d of producer %d", i, id)
			}
			h.InsertBatch(keys, jobs)
		}(p)
	}
	wg.Wait()

	fmt.Printf("queued %d jobs (size is exact while quiescent)\n", q.Size())

	// Drain concurrently with DrainMin: up to n jobs per call, each pop
	// individually within the relaxation bound. A short result signals
	// (relaxed) emptiness, like a failed TryDeleteMin.
	var mu sync.Mutex
	var order []uint64
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			var batch []klsm.KV[uint64, string]
			for {
				batch = h.DrainMin(batch[:0], 4)
				if len(batch) == 0 {
					return // quiescent drain: empty means empty
				}
				mu.Lock()
				for _, kv := range batch {
					order = append(order, kv.Key)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	fmt.Printf("drained %d jobs\n", len(order))
	exact := sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] })
	fmt.Printf("strictly sorted: %v (relaxation may reorder within the rho=%d bound)\n",
		exact, q.Rho())
}
