// Quickstart: the smallest complete k-LSM program.
//
// Run with:
//
//	go run ./examples/quickstart
//
// It creates a queue, inserts prioritized jobs from several goroutines, and
// drains them concurrently, illustrating the two rules of the API: one
// Handle per goroutine, and TryDeleteMin's relaxed-but-bounded semantics.
package main

import (
	"fmt"
	"sort"
	"sync"

	"klsm"
)

func main() {
	// k = 16: every TryDeleteMin returns one of the (16 × #handles + 1)
	// smallest keys. Smaller k = stricter order, less scalability.
	q := klsm.New[string](klsm.WithRelaxation(16))

	const producers = 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := q.NewHandle() // one handle per goroutine — never share
			for i := 0; i < 5; i++ {
				priority := uint64(id*5 + i)
				h.Insert(priority, fmt.Sprintf("job %d of producer %d", i, id))
			}
		}(p)
	}
	wg.Wait()

	fmt.Printf("queued %d jobs (size is exact while quiescent)\n", q.Size())

	// Drain concurrently. Within one handle, failed TryDeleteMin may be
	// spurious under concurrency; in this quiescent drain it means empty.
	var mu sync.Mutex
	var order []uint64
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			for {
				prio, job, ok := h.TryDeleteMin()
				if !ok {
					return
				}
				mu.Lock()
				order = append(order, prio)
				mu.Unlock()
				_ = job
			}
		}()
	}
	wg.Wait()

	fmt.Printf("drained %d jobs\n", len(order))
	exact := sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] })
	fmt.Printf("strictly sorted: %v (relaxation may reorder within the rho=%d bound)\n",
		exact, q.Rho())
}
