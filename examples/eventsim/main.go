// Event-simulation example: a parallel discrete-event simulation whose
// event list is a k-LSM priority queue over float64 timestamps.
//
// Run with:
//
//	go run ./examples/eventsim
//
// Discrete-event simulation is the classic priority-queue workload: pop the
// earliest event, execute it, schedule follow-up events in the future. An
// exact event list serializes all workers on delete-min; a relaxed one lets
// them proceed in parallel at the cost of executing some events slightly
// out of timestamp order.
//
// The example uses the v2 ordered API: simulation time is continuous, so
// the natural key type is float64, mapped into the engine's priority space
// by klsm.Float64Key (the IEEE total-order codec) via klsm.NewOrdered — no
// hand-packing of timestamps into uint64. It quantifies the relaxation
// cost — exactly the trade the paper offers: with ρ = T·k the timestamp
// inversion ("causality window") observed by any worker is bounded, so a
// simulation whose events tolerate a bounded reordering window (e.g.
// independent arrivals binned into epochs) can use the relaxed queue
// safely. The program reports the measured worst inversion alongside the
// bound.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"klsm"
)

// event is a simulated arrival that may trigger a follow-up.
type event struct {
	src      int
	hop      int
	interval float64
}

func main() {
	const (
		workers   = 4
		k         = 32
		sources   = 1000
		hops      = 8
		horizonTS = 1 << 20
	)
	// Ordered queue: float64 timestamps in, float64 timestamps out; the
	// codec layer keeps the engine's relaxation guarantees intact over the
	// float order (specials included).
	codec := klsm.Float64Key()
	q := klsm.NewOrdered[float64, event](codec, klsm.WithRelaxation(k))

	var (
		inflight atomic.Int64
		executed atomic.Int64
		dropped  atomic.Int64
		// Skew frontier, tracked lock-free: the codec's encoding is
		// order-preserving, so CAS loops over encoded timestamps compare
		// exactly like the floats — the same trick the queue itself uses.
		// maxEnc is the latest executed timestamp, worstSkewEnc the worst
		// observed max-ts inversion, both Float64Key-encoded.
		maxEnc       atomic.Uint64
		worstSkewEnc atomic.Uint64
	)
	maxEnc.Store(codec.Encode(0))
	worstSkewEnc.Store(codec.Encode(0))

	// Seed one arrival per source as a single batch block.
	seedKeys := make([]float64, sources)
	seedEvents := make([]event, sources)
	for s := 0; s < sources; s++ {
		interval := float64(10+s%97) * 1.5
		inflight.Add(1)
		seedKeys[s] = interval
		seedEvents[s] = event{src: s, hop: 0, interval: interval}
	}
	seed := q.NewHandle()
	seed.InsertBatch(seedKeys, seedEvents)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			for {
				ts, ev, ok := h.TryDeleteMin()
				if !ok {
					if inflight.Load() == 0 {
						return
					}
					continue
				}
				// Measure timestamp inversion: how far behind the already-
				// executed frontier this event is.
				enc := codec.Encode(ts)
				for {
					m := maxEnc.Load()
					if enc <= m {
						skewEnc := codec.Encode(codec.Decode(m) - ts)
						for {
							ws := worstSkewEnc.Load()
							if skewEnc <= ws || worstSkewEnc.CompareAndSwap(ws, skewEnc) {
								break
							}
						}
						break
					}
					if maxEnc.CompareAndSwap(m, enc) {
						break
					}
				}
				executed.Add(1)
				// Schedule the follow-up arrival.
				if ev.hop+1 < hops && ts+ev.interval < horizonTS {
					inflight.Add(1)
					h.Insert(ts+ev.interval, event{src: ev.src, hop: ev.hop + 1, interval: ev.interval})
				} else {
					dropped.Add(1)
				}
				inflight.Add(-1)
			}
		}()
	}
	wg.Wait()

	fmt.Printf("executed %d events across %d workers (k=%d, float64 timestamps)\n", executed.Load(), workers, k)
	fmt.Printf("worst timestamp inversion: %.1f time units\n", codec.Decode(worstSkewEnc.Load()))
	fmt.Printf("events that can be skipped at any moment are bounded by rho = T*k = %d,\n", q.Rho())
	fmt.Println("so epoch-tolerant simulations get parallel delete-min with a hard causality bound.")
}
