// Event-simulation example: a parallel discrete-event simulation whose
// event list is a k-LSM priority queue.
//
// Run with:
//
//	go run ./examples/eventsim
//
// Discrete-event simulation is the classic priority-queue workload: pop the
// earliest event, execute it, schedule follow-up events in the future. An
// exact event list serializes all workers on delete-min; a relaxed one lets
// them proceed in parallel at the cost of executing some events slightly
// out of timestamp order.
//
// The example quantifies that cost — exactly the trade the paper's
// relaxation offers: with ρ = T·k the timestamp inversion ("causality
// window") observed by any worker is bounded, so a simulation whose events
// tolerate a bounded reordering window (e.g. independent arrivals binned
// into epochs) can use the relaxed queue safely. The program reports the
// measured worst inversion alongside the bound.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"klsm"
)

// event is a simulated arrival that may trigger a follow-up.
type event struct {
	src      int
	hop      int
	interval uint64
}

func main() {
	const (
		workers   = 4
		k         = 32
		sources   = 1000
		hops      = 8
		horizonTS = 1 << 20
	)
	q := klsm.New[event](klsm.WithRelaxation(k))

	var (
		inflight  atomic.Int64
		executed  atomic.Int64
		dropped   atomic.Int64
		maxTS     atomic.Uint64 // latest timestamp already executed
		worstSkew atomic.Uint64 // max(maxTS - ts) at execution time
	)

	seed := q.NewHandle()
	for s := 0; s < sources; s++ {
		interval := uint64(10 + s%97)
		inflight.Add(1)
		seed.Insert(interval, event{src: s, hop: 0, interval: interval})
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			for {
				ts, ev, ok := h.TryDeleteMin()
				if !ok {
					if inflight.Load() == 0 {
						return
					}
					continue
				}
				// Measure timestamp inversion: how far behind the already-
				// executed frontier this event is.
				for {
					m := maxTS.Load()
					if ts <= m {
						skew := m - ts
						for {
							ws := worstSkew.Load()
							if skew <= ws || worstSkew.CompareAndSwap(ws, skew) {
								break
							}
						}
						break
					}
					if maxTS.CompareAndSwap(m, ts) {
						break
					}
				}
				executed.Add(1)
				// Schedule the follow-up arrival.
				if ev.hop+1 < hops && ts+ev.interval < horizonTS {
					inflight.Add(1)
					h.Insert(ts+ev.interval, event{src: ev.src, hop: ev.hop + 1, interval: ev.interval})
				} else {
					dropped.Add(1)
				}
				inflight.Add(-1)
			}
		}()
	}
	wg.Wait()

	fmt.Printf("executed %d events across %d workers (k=%d)\n", executed.Load(), workers, k)
	fmt.Printf("worst timestamp inversion: %d time units\n", worstSkew.Load())
	fmt.Printf("events that can be skipped at any moment are bounded by rho = T*k = %d,\n", q.Rho())
	fmt.Println("so epoch-tolerant simulations get parallel delete-min with a hard causality bound.")
}
