// The sharded rank-bound suite: the quality machinery of
// klsm_quality_test.go driven through internal/server's topic router, so
// the composed bound S·T·k is asserted on the same ostat treap ledger the
// single-queue suite uses. It lives in an external test package because the
// router imports klsm.
package klsm_test

import (
	"fmt"
	"strconv"
	"sync"
	"testing"

	"klsm"
	"klsm/internal/ostat"
	"klsm/internal/server"
	"klsm/internal/xrand"
)

// newShardedRouter builds S shard queues with relaxation k behind a router.
func newShardedRouter(s, k int) *server.Router {
	queues := make([]*klsm.Queue[string], s)
	for i := range queues {
		queues[i] = klsm.New[string](klsm.WithRelaxation(k))
	}
	return server.NewRouter(queues, 0)
}

// TestKBoundShardedRouter is the zero-slack arm for the sharded service: a
// single goroutine drives one router handle (T = 1 per shard) through a
// random mix of topic inserts, topic batch inserts, global pops and topic
// drains, with the exact global live multiset in an order-statistic treap.
//
// Every key DeleteMinGlobal returns must be among the S·T·k + 1 smallest
// live keys: under serialized access each shard's pop equals its peek, so
// the argmin-of-peeks key has at most T·k smaller keys in every shard (its
// own relaxation at home, the peek bound elsewhere). No slack — at S = 1
// this is exactly the single-queue structural bound, and larger S must not
// leak beyond the composition. Topic drains are shard-local: they promise
// the per-shard bound only, so here they are checked for conservation (a
// drained key must be live) but not global rank.
func TestKBoundShardedRouter(t *testing.T) {
	const topics = 32
	for _, S := range []int{1, 2, 4} {
		for _, k := range []int{0, 8, 256} {
			t.Run(fmt.Sprintf("S=%d/k=%d", S, k), func(t *testing.T) {
				r := newShardedRouter(S, k)
				h := r.NewHandle()
				defer h.Close()
				if got, want := r.Rho(), S*k; got != want {
					t.Fatalf("router rho = %d, want S·T·k = %d", got, want)
				}
				tree := ostat.New(uint64(S)*1009 + uint64(k)*31 + 7)
				rng := xrand.NewSeeded(uint64(S)*2003 + uint64(k)*131 + 5)
				topic := func() string { return fmt.Sprintf("t%02d", rng.Intn(topics)) }
				maxRank := 0
				var dst []klsm.KV[uint64, string]
				const ops = 20_000
				for i := 0; i < ops; i++ {
					switch op := rng.Intn(20); {
					case op < 10 || tree.Len() == 0: // topic insert
						key := rng.Uint64n(1 << 40)
						tree.Insert(key)
						h.Insert(topic(), key, "")
					case op < 12: // topic batch insert
						n := 1 + int(rng.Uint64n(48))
						keys := make([]uint64, n)
						for j := range keys {
							keys[j] = rng.Uint64n(1 << 40)
							tree.Insert(keys[j])
						}
						h.InsertBatch(topic(), keys, nil)
					case op < 18: // global pop: the S·T·k assertion
						key, _, ok := h.DeleteMinGlobal()
						if !ok {
							continue
						}
						rho := r.Rho()
						rank := tree.Rank(key)
						if !tree.Delete(key) {
							t.Fatalf("op %d: global pop returned key %d that is not live", i, key)
						}
						if rank > rho {
							t.Fatalf("op %d: rank %d exceeds S·T·k = %d (sharded relaxation violated)", i, rank, rho)
						}
						if rank > maxRank {
							maxRank = rank
						}
					default: // topic drain: shard-local contract, conservation only
						dst = h.DrainTopic(topic(), dst[:0], 1+int(rng.Uint64n(8)))
						for _, kv := range dst {
							if !tree.Delete(kv.Key) {
								t.Fatalf("op %d: topic drain returned key %d that is not live", i, kv.Key)
							}
						}
					}
				}
				t.Logf("max observed global rank %d (bound S·T·k = %d)", maxRank, S*k)
			})
		}
	}
}

// TestKBoundShardedRouterConcurrent is the race-mode arm: P workers, each
// with its own router handle (so T = P per shard), hammer the sharded queue
// while per-shard treaps track each shard's live multiset under a mutex.
// Values carry the owning shard, so every key coming back out is checked
// against its home shard's ledger.
//
// What is asserted is the per-shard contract, which is what survives
// concurrency: a rank-checked pop — topic-scoped or the shard component of
// a global pop — holds the lock across the take, where its home-shard rank
// is bounded by that shard's ρ = T·k plus the P-1 linearization slack of
// the unsharded concurrent suite. The global S·T·k envelope is exact only
// under serialized access (asserted zero-slack above): a concurrent deleter
// can empty the argmin shard between peek and pop, making the cross-shard
// choice stale by an unbounded amount — the standard caveat of
// choice-of-shards composition — so the observed global rank is logged, not
// asserted. Free-running pops check conservation only. Run under -race.
func TestKBoundShardedRouterConcurrent(t *testing.T) {
	const (
		workers = 4
		k       = 64
		rounds  = 2_500
		topics  = 16
	)
	for _, S := range []int{2, 4} {
		t.Run(fmt.Sprintf("S=%d", S), func(t *testing.T) {
			r := newShardedRouter(S, k)
			trees := make([]*ostat.Tree, S)
			for i := range trees {
				trees[i] = ostat.New(uint64(S)*73 + uint64(i)*11 + 3)
			}
			var (
				mu            sync.Mutex
				maxShardRank  int
				maxGlobalRank int
				checked       int64
				bad           error
			)
			// shardOf recovers a popped key's home shard from its value tag.
			shardOf := func(v string) int {
				s, err := strconv.Atoi(v)
				if err != nil || s < 0 || s >= S {
					return -1
				}
				return s
			}
			// consume removes key from its home-shard treap, locked by the
			// caller; popped values always carry the shard tag.
			consume := func(w int, key uint64, v, op string) {
				s := shardOf(v)
				if s < 0 {
					if bad == nil {
						bad = fmt.Errorf("worker %d: %s returned key %d with bad shard tag %q", w, op, key, v)
					}
					return
				}
				if !trees[s].Delete(key) && bad == nil {
					bad = fmt.Errorf("worker %d: %s returned key %d not live on shard %d", w, op, key, s)
				}
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := r.NewHandle()
					rng := xrand.NewSeeded(uint64(S)*500009 + uint64(w)*104729 + 17)
					topic := func() string { return fmt.Sprintf("t%02d", rng.Intn(topics)) }
					var dst []klsm.KV[uint64, string]
					for i := 0; i < rounds; i++ {
						switch v := rng.Intn(100); {
						case v < 35: // topic insert, tree and shard in step
							tp := topic()
							s := r.Shard(tp)
							key := rng.Uint64n(1 << 40)
							mu.Lock()
							trees[s].Insert(key)
							h.Insert(tp, key, strconv.Itoa(s))
							mu.Unlock()
						case v < 45: // topic batch insert
							tp := topic()
							s := r.Shard(tp)
							n := 1 + int(rng.Uint64n(24))
							keys := make([]uint64, n)
							vals := make([]string, n)
							for j := range keys {
								keys[j] = rng.Uint64n(1 << 40)
								vals[j] = strconv.Itoa(s)
							}
							mu.Lock()
							for _, key := range keys {
								trees[s].Insert(key)
							}
							h.InsertBatch(tp, keys, vals)
							mu.Unlock()
						case v < 57: // rank-checked global pop at the linearization point
							mu.Lock()
							key, val, ok := h.DeleteMinGlobal()
							if ok {
								s := shardOf(val)
								if s < 0 {
									if bad == nil {
										bad = fmt.Errorf("worker %d: global pop key %d has bad shard tag %q", w, key, val)
									}
									mu.Unlock()
									continue
								}
								shardRank := trees[s].Rank(key)
								global := shardRank
								for j := range trees {
									if j != s {
										global += trees[j].Rank(key)
									}
								}
								present := trees[s].Delete(key)
								bound := r.Queue(s).Rho() + workers - 1
								checked++
								if shardRank > maxShardRank {
									maxShardRank = shardRank
								}
								if global > maxGlobalRank {
									maxGlobalRank = global
								}
								if !present && bad == nil {
									bad = fmt.Errorf("worker %d: global pop key %d not live on shard %d", w, key, s)
								}
								if shardRank > bound && bad == nil {
									bad = fmt.Errorf("worker %d: shard %d rank %d exceeds ρ+P-1 = %d", w, s, shardRank, bound)
								}
							}
							mu.Unlock()
						case v < 70: // rank-checked topic pop at the linearization point
							tp := topic()
							mu.Lock()
							dst = h.DrainTopic(tp, dst[:0], 1)
							if len(dst) == 1 {
								key := dst[0].Key
								s := shardOf(dst[0].Value)
								if s < 0 {
									if bad == nil {
										bad = fmt.Errorf("worker %d: topic pop key %d has bad shard tag %q", w, key, dst[0].Value)
									}
									mu.Unlock()
									continue
								}
								rank := trees[s].Rank(key)
								present := trees[s].Delete(key)
								bound := r.Queue(s).Rho() + workers - 1
								checked++
								if rank > maxShardRank {
									maxShardRank = rank
								}
								if !present && bad == nil {
									bad = fmt.Errorf("worker %d: topic pop key %d not live on shard %d", w, key, s)
								}
								if rank > bound && bad == nil {
									bad = fmt.Errorf("worker %d: shard %d rank %d exceeds ρ+P-1 = %d", w, s, rank, bound)
								}
							}
							mu.Unlock()
						case v < 85: // free-running global pop: conservation only
							key, val, ok := h.DeleteMinGlobal()
							if !ok {
								continue
							}
							mu.Lock()
							consume(w, key, val, "global pop")
							mu.Unlock()
						default: // free-running topic drain: conservation only
							dst = h.DrainTopic(topic(), dst[:0], 1+int(rng.Uint64n(8)))
							mu.Lock()
							for _, kv := range dst {
								consume(w, kv.Key, kv.Value, "topic drain")
							}
							mu.Unlock()
						}
					}
				}(w)
			}
			wg.Wait()
			if bad != nil {
				t.Fatal(bad)
			}
			if checked == 0 {
				t.Fatal("no rank-checked pops ran")
			}
			live := 0
			for _, tr := range trees {
				live += tr.Len()
			}
			if got := r.Size(); got != live {
				t.Errorf("router size %d != treap live count %d (conservation)", got, live)
			}
			t.Logf("S=%d: %d rank-checked pops, max shard rank %d (per-shard bound %d), max observed global rank %d (serialized envelope S·T·k = %d)",
				S, checked, maxShardRank, k*workers+workers-1, maxGlobalRank, S*workers*k)
		})
	}
}
