package klsm

import (
	"errors"
	"fmt"
	"io/fs"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"klsm/internal/checkpointd"
	"klsm/internal/segment"
	"klsm/internal/wal"
	"klsm/internal/walfault"
)

// Durability errors. Both corruption errors are aliases of the internal
// sentinels, so errors.Is works across the package boundary.
var (
	// ErrClosed reports an operation on a closed queue. Error-returning
	// operations (Sync, Checkpoint, Close) return it; error-less operations
	// (Insert, TryDeleteMin, ...) panic with it, like other use-after-finish
	// misuse in the standard library.
	ErrClosed = errors.New("klsm: queue closed")
	// ErrNotPersistent reports a durability operation on a queue created by
	// New rather than Open.
	ErrNotPersistent = errors.New("klsm: queue has no persistence (created by New, not Open)")
	// ErrCorruptWAL reports provable mid-log corruption in the write-ahead
	// log: an interior record is damaged while later records are intact.
	// Open refuses to recover past it — silently dropping the record would
	// un-acknowledge an insert whose fsync succeeded. (A damaged *final*
	// record is a torn crash artifact, truncated silently; see Open.)
	ErrCorruptWAL = wal.ErrCorrupt
	// ErrCorruptCheckpoint reports a damaged checkpoint artifact: a segment
	// file or the MANIFEST fails its checksum or structural validation.
	ErrCorruptCheckpoint = segment.ErrCorrupt
)

// ckptChunk caps the entries per checkpoint segment file, so recovery loads
// each segment as one reasonably-sized pre-sorted block publication.
const ckptChunk = 128 << 10

// RecoveryStats describes what Open found and rebuilt.
type RecoveryStats struct {
	// Recovered is false when Open initialized a fresh directory.
	Recovered bool
	// SegmentItems counts items loaded from checkpoint segments (after
	// cancelling WAL-logged deletes).
	SegmentItems int64
	// WALRecords counts records replayed from the WAL tail.
	WALRecords int64
	// WALInserts counts WAL-tail inserts that survived (were re-applied).
	WALInserts int64
	// WALDeletes counts WAL-tail delete records.
	WALDeletes int64
	// UnknownDeletes counts delete records whose insert appeared in neither
	// the WAL nor any segment. They are counted, not fatal: a crash between
	// a checkpoint's segment fsync and its WAL switch cannot produce one,
	// but a WAL truncated by an operator can.
	UnknownDeletes int64
	// TornBytes is the length of the torn WAL tail Open truncated (bytes
	// past the last complete record — never acknowledged, by construction).
	TornBytes int64
	// FrozenWALs counts retired WAL files the manifest left un-compacted (a
	// crash landed between a checkpoint's rotation and its commit); their
	// records were replayed and the next checkpoint retires them.
	FrozenWALs int
}

// PersistStats is a snapshot of the durability layer's counters.
type PersistStats struct {
	// WALAppends, WALBytes and WALFsyncs count records appended, framed
	// bytes written and group-commit fsyncs on the live WAL since Open.
	WALAppends int64
	// WALBytes counts framed bytes written to the live WAL.
	WALBytes int64
	// WALFsyncs counts fsyncs issued on the live WAL.
	WALFsyncs int64
	// WALSyncWaits counts explicit Sync calls that had to wait for the
	// group-commit writer.
	WALSyncWaits int64
	// WALWrites counts write() calls on the live WAL; coalescing makes this
	// smaller than WALAppends under load.
	WALWrites int64
	// WALTimerFires counts SyncInterval timers that actually woke the
	// writer; timers made stale by an earlier Sync are canceled.
	WALTimerFires int64
	// LiveWALBytes is the current size of the live WAL file — the input to
	// the auto-checkpoint size trigger.
	LiveWALBytes int64
	// FrozenWALs is the current count of rotated-but-uncompacted WAL files
	// (nonzero only while a checkpoint is in flight or after one failed).
	FrozenWALs int
	// Checkpoints counts completed Checkpoint calls and CheckpointTime their
	// cumulative duration.
	Checkpoints int64
	// CheckpointTime is the cumulative wall time spent in Checkpoint.
	CheckpointTime time.Duration
	// AutoCheckpoints and AutoCheckpointFailures count scheduler-triggered
	// checkpoint attempts by outcome; OrphansRemoved counts files the timed
	// GC swept. All zero without WithAutoCheckpoint.
	AutoCheckpoints        int64
	AutoCheckpointFailures int64
	OrphansRemoved         int64
	// Segments is the number of live checkpoint segment files.
	Segments int
	// NextSeq is the next unassigned durability sequence number.
	NextSeq uint64
	// Recovery describes what Open found.
	Recovery RecoveryStats
}

// persister is the durability state of a queue created by Open.
type persister[V any] struct {
	fs    walfault.FS
	dir   string
	codec ValueCodec[V]
	wopts wal.Options

	// log is the live WAL. The pointer never changes after openFS —
	// Checkpoint rotates the Log's file in place — so the op path reads it
	// without synchronization.
	log *wal.Log
	// seq is the last assigned durability sequence number.
	seq atomic.Uint64

	// sched drives automatic checkpoints and timed orphan GC; nil without
	// WithAutoCheckpoint.
	sched *checkpointd.Scheduler

	// ckptMu serializes Checkpoint, the orphan sweep and Close against each
	// other and guards the fields below.
	ckptMu   sync.Mutex
	walName  string
	frozen   []string // rotated WALs not yet compacted (manifest Frozen)
	walBase  int64    // live WAL bytes present at Open (before log.FileBytes)
	segs     []segment.Ref
	walOrd   uint64 // ordinal for the next WAL file name
	segOrd   uint64 // ordinal for the next segment file name
	closed   bool
	recovery RecoveryStats

	ckpts     atomic.Int64
	ckptNanos atomic.Int64
}

// Open opens (or initializes) a persistent queue rooted at directory dir.
// codec serializes the payloads; opts accepts every New option plus the
// durability options (WithSyncEvery, WithSyncInterval, WithWALBuffer).
//
// On an existing directory Open recovers: it loads the checkpoint segments
// named by the MANIFEST, replays the WAL tail (re-applying inserts whose
// delete was never logged, cancelling the rest), truncates a torn final
// record, and resumes appending to the same WAL. Acknowledged operations —
// those covered by a Sync (or SyncEvery/SyncInterval group commit) that
// returned before the crash — survive exactly once. Unacknowledged ones may
// or may not, exactly like any write-behind log. Provable mid-log damage
// refuses with ErrCorruptWAL or ErrCorruptCheckpoint rather than silently
// recovering a partial queue.
func Open[V any](dir string, codec ValueCodec[V], opts ...Option) (*Queue[V], error) {
	fsys, err := walfault.OS(dir)
	if err != nil {
		return nil, err
	}
	return openFS(fsys, dir, codec, opts...)
}

// OpenFS is Open over a caller-supplied filesystem instead of a real
// directory: the fault-injection tests (and the server's crash harness) run
// a queue on a walfault.MemFS — with injected fsync errors, short writes
// and simulated kills — through exactly the production recovery paths. dir
// is used only in messages. Production callers want Open.
func OpenFS[V any](fsys walfault.FS, dir string, codec ValueCodec[V], opts ...Option) (*Queue[V], error) {
	return openFS(fsys, dir, codec, opts...)
}

// openFS is Open over an abstract filesystem — the crash-injection tests
// call it with a walfault.MemFS.
func openFS[V any](fsys walfault.FS, dir string, codec ValueCodec[V], opts ...Option) (*Queue[V], error) {
	if codec == nil {
		return nil, errors.New("klsm: Open requires a ValueCodec")
	}
	o := resolveOptions(opts)
	p := &persister[V]{
		fs:    fsys,
		dir:   dir,
		codec: codec,
		wopts: wal.Options{
			SyncEvery:          o.syncEvery,
			SyncInterval:       o.syncInterval,
			BufferCap:          o.walBuffer,
			WriteCoalesceBytes: o.walCoalesce,
		},
	}

	m, err := segment.ReadManifest(fsys)
	switch {
	case err == nil:
		p.recovery.Recovered = true
	case errors.Is(err, fs.ErrNotExist):
		// Fresh directory: create an empty WAL, then publish the manifest
		// naming it. A crash between the two leaves an orphan WAL and no
		// manifest — the next Open simply initializes again.
		m = segment.Manifest{NextSeq: 1, WAL: ordName("wal", 1)}
		if err := createEmpty(fsys, m.WAL); err != nil {
			return nil, err
		}
		if err := segment.WriteManifest(fsys, m); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	// Scan the WAL chain — frozen files (oldest first), then the live WAL —
	// before touching segments: deletes logged anywhere in the chain cancel
	// items wherever they live. Records are appended in operation order and
	// rotation preserves that order across files, so a durable delete
	// implies its insert is durable too — earlier in the chain or in a
	// segment. A torn tail is truncated wherever it appears: torn bytes were
	// never fsynced, hence never acknowledged (a frozen file can only be
	// torn when the crash landed before the rotation that would have
	// fsynced it, with the successor still empty).
	chain := append(append([]string(nil), m.Frozen...), m.WAL)
	walInserts := make([][]wal.Op, len(chain))
	deleted := make(map[uint64]bool) // seq -> matched to its insert yet?
	maxSeq := uint64(0)
	for i, name := range chain {
		walData, err := fsys.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("klsm: manifest names missing WAL %s: %w", name, err)
		}
		var inserts []wal.Op
		res, err := wal.Scan(walData, func(op wal.Op) {
			if op.Seq > maxSeq {
				maxSeq = op.Seq
			}
			if op.Delete {
				deleted[op.Seq] = false
				p.recovery.WALDeletes++
			} else {
				inserts = append(inserts, op)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("klsm: %s: %w", name, err)
		}
		walInserts[i] = inserts
		p.recovery.WALRecords += int64(res.Records)
		if res.Torn {
			p.recovery.TornBytes += int64(len(walData)) - res.GoodLen
			if err := fsys.Truncate(name, res.GoodLen); err != nil {
				return nil, err
			}
		}
		if name == m.WAL {
			p.walBase = res.GoodLen
		}
	}
	p.recovery.FrozenWALs = len(m.Frozen)

	q := &Queue[V]{q: newCoreQueue[V](o, nil)}
	q.p = p
	lh := q.q.NewHandle() // core-level loader handle: bypasses WAL logging

	// Load each checkpoint segment as one pre-sorted batch, skipping items
	// whose delete the WAL logged.
	var keys, seqs []uint64
	var vals []V
	for _, ref := range m.Segments {
		entries, err := segment.Read(fsys, ref.Name)
		if err != nil {
			return nil, fmt.Errorf("klsm: %w", err)
		}
		if int64(len(entries)) != ref.Count {
			return nil, fmt.Errorf("%w: klsm: segment %s holds %d entries, manifest says %d",
				ErrCorruptCheckpoint, ref.Name, len(entries), ref.Count)
		}
		keys, vals, seqs = keys[:0], vals[:0], seqs[:0]
		for _, e := range entries {
			if e.Seq > maxSeq {
				maxSeq = e.Seq
			}
			if _, dead := deleted[e.Seq]; dead {
				deleted[e.Seq] = true
				continue
			}
			v, err := codec.Decode(e.Value)
			if err != nil {
				return nil, fmt.Errorf("klsm: segment %s seq %d: decoding value: %w", ref.Name, e.Seq, err)
			}
			keys = append(keys, e.Key)
			vals = append(vals, v)
			seqs = append(seqs, e.Seq)
		}
		lh.InsertBatchSeqs(keys, vals, seqs)
		p.recovery.SegmentItems += int64(len(keys))
	}

	// Re-apply the never-deleted inserts of each WAL in the chain, one batch
	// per file, in chain order.
	for i, inserts := range walInserts {
		keys, vals, seqs = keys[:0], vals[:0], seqs[:0]
		for _, op := range inserts {
			if _, dead := deleted[op.Seq]; dead {
				deleted[op.Seq] = true
				continue
			}
			v, err := codec.Decode(op.Value)
			if err != nil {
				return nil, fmt.Errorf("klsm: %s seq %d: decoding value: %w", chain[i], op.Seq, err)
			}
			keys = append(keys, op.Key)
			vals = append(vals, v)
			seqs = append(seqs, op.Seq)
		}
		lh.InsertBatchSeqs(keys, vals, seqs)
		p.recovery.WALInserts += int64(len(keys))
	}
	for _, matched := range deleted {
		if !matched {
			p.recovery.UnknownDeletes++
		}
	}
	lh.Close()

	// Sweep artifacts the manifest does not name (half-written segments or
	// WALs from an interrupted checkpoint, a stale MANIFEST.tmp). Torn tails
	// were already truncated during the chain scan.
	live := map[string]bool{segment.ManifestName: true}
	for _, name := range chain {
		live[name] = true
		if n := ordOf(name); n >= p.walOrd {
			p.walOrd = n + 1
		}
	}
	for _, ref := range m.Segments {
		live[ref.Name] = true
		if n := ordOf(ref.Name); n >= p.segOrd {
			p.segOrd = n + 1
		}
	}
	if p.segOrd == 0 {
		p.segOrd = 1
	}
	if names, err := fsys.List(); err == nil {
		for _, n := range names {
			if !live[n] {
				fsys.Remove(n)
			}
		}
	}

	if m.NextSeq > 0 && m.NextSeq-1 > maxSeq {
		maxSeq = m.NextSeq - 1
	}
	p.seq.Store(maxSeq)
	p.walName = m.WAL
	p.frozen = m.Frozen
	p.segs = m.Segments

	l, err := wal.Open(fsys, m.WAL, p.wopts)
	if err != nil {
		return nil, err
	}
	p.log = l
	if o.ckptWALBytes > 0 || o.ckptInterval > 0 {
		p.sched = checkpointd.Start(
			checkpointd.Policy{MaxWALBytes: o.ckptWALBytes, MaxAge: o.ckptInterval},
			checkpointd.Hooks{
				WALBytes:     p.workBytes,
				Checkpoint:   p.checkpoint,
				SweepOrphans: p.sweepOrphans,
			})
	}
	return q, nil
}

// workBytes reports the un-checkpointed work the scheduler's triggers gate
// on: the live WAL's size, or a token byte when only a frozen backlog (from
// an interrupted compaction) remains to retire.
func (p *persister[V]) workBytes() int64 {
	p.ckptMu.Lock()
	base := p.walBase
	backlog := len(p.frozen)
	p.ckptMu.Unlock()
	b := base + p.log.FileBytes()
	if b == 0 && backlog > 0 {
		return 1
	}
	return b
}

// sweepOrphans removes every file in the directory that the committed
// manifest state does not name. It runs under ckptMu, so the live set it
// computes is exactly the committed state — a checkpoint mid-flight can
// never lose a file it just staged, and a manifest-named segment is never
// eligible by construction.
func (p *persister[V]) sweepOrphans() int {
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	if p.closed {
		return 0
	}
	live := map[string]bool{segment.ManifestName: true, p.walName: true}
	for _, n := range p.frozen {
		live[n] = true
	}
	for _, s := range p.segs {
		live[s.Name] = true
	}
	names, err := p.fs.List()
	if err != nil {
		return 0
	}
	removed := 0
	for _, n := range names {
		if !live[n] && p.fs.Remove(n) == nil {
			removed++
		}
	}
	return removed
}

// appendInsert encodes value into scratch, appends the insert record, and
// returns the (possibly grown) scratch for reuse. WAL errors are sticky and
// deliberately not surfaced here — the insert still lands in memory, and the
// failure reports on the next Sync, Checkpoint or Close, like any
// write-behind log.
func (p *persister[V]) appendInsert(scratch []byte, key uint64, value V, seq uint64) []byte {
	buf, err := p.codec.Encode(scratch, value)
	if err != nil {
		panic(fmt.Errorf("klsm: value codec failed on insert: %w", err))
	}
	p.log.Append(wal.Op{Seq: seq, Key: key, Value: buf})
	return buf
}

// appendDelete logs the consumption of the insert with the given seq.
func (p *persister[V]) appendDelete(key, seq uint64) {
	p.log.Append(wal.Op{Delete: true, Seq: seq, Key: key})
}

// Sync blocks until every operation performed before the call is durable,
// and returns the WAL's sticky error if the log has failed. An operation is
// acknowledged — guaranteed to survive recovery exactly once — precisely
// when a Sync covering it has returned nil (group commit acknowledges
// batches: one fsync covers every operation since the previous one). On a
// queue created by New, Sync is a no-op.
func (q *Queue[V]) Sync() error {
	if q.closed.Load() {
		return ErrClosed
	}
	if q.p == nil {
		return nil
	}
	return q.p.log.Sync()
}

// Checkpoint compacts the durability state: it rotates the live WAL and
// merges the frozen log with the existing segments into a fresh sorted
// segment set, publishing each step through the MANIFEST. Recovery cost
// thereafter is proportional to the live item count plus the short new WAL,
// not to the operation history.
//
// Checkpoint is log-structured: it reads only immutable on-disk files —
// never the in-memory queue — so it is safe to run concurrently with every
// queue operation, including inserts and deletes (checkpoints and Close
// still serialize against each other). It returns ErrNotPersistent on a
// queue created by New and ErrClosed after Close. A crash at any point is
// safe: each MANIFEST is published by atomic rename, and every intermediate
// state replays acknowledged operations exactly once.
func (q *Queue[V]) Checkpoint() error {
	if q.p == nil {
		return ErrNotPersistent
	}
	return q.p.checkpoint()
}

// checkpoint runs one full log-structured checkpoint under ckptMu:
//
//  1. Stage a fresh empty WAL file.
//  2. Publish M1: the new WAL is live, the old live WAL joins the frozen
//     list, segments unchanged. From here recovery replays the old WAL as
//     frozen history — which is exactly what it holds.
//  3. Rotate the log: the writer fsyncs and closes the old file (now
//     complete and immutable) and directs pending plus future appends to
//     the new one. Append order is preserved across the cut.
//  4. Compact every frozen WAL and every old segment into a fresh segment
//     set (checkpointd.Compact — immutable inputs only).
//  5. Publish M2: frozen list empty, segments replaced. Then delete the
//     retired files.
//
// A failure between M1 and a completed rotation adopts M1 in memory and
// returns: the manifest-named state stays a superset of the files recovery
// needs, appends continue on the old file (still named, as frozen — it is
// simply not immutable yet), and the next attempt rotates it out with a
// fresh successor. A failure after rotation leaves the frozen backlog for
// the next attempt; Compact cleans up its own staging.
func (p *persister[V]) checkpoint() error {
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	if p.closed {
		return ErrClosed
	}
	start := time.Now()

	newWAL := ordName("wal", p.walOrd)
	p.walOrd++
	if err := createEmpty(p.fs, newWAL); err != nil {
		p.fs.Remove(newWAL)
		return err
	}
	frozen := append(append([]string(nil), p.frozen...), p.walName)
	m1 := segment.Manifest{
		NextSeq:  p.seq.Load() + 1,
		WAL:      newWAL,
		Frozen:   frozen,
		Segments: p.segs,
	}
	if err := segment.WriteManifest(p.fs, m1); err != nil {
		p.fs.Remove(newWAL)
		return err
	}
	// M1 is durable: adopt it in memory before attempting the rotation, so
	// that whatever happens next, sweepOrphans' live set matches (is a
	// superset of) what the published manifest names.
	p.walName = newWAL
	p.frozen = frozen
	if err := p.log.Rotate(newWAL); err != nil {
		return err
	}
	p.walBase = 0

	refs, _, err := checkpointd.Compact(p.fs, frozen, p.segs, ckptChunk, func() string {
		name := ordName("seg", p.segOrd)
		p.segOrd++
		return name
	})
	if err != nil {
		return err
	}

	// The commit point: after this rename is durable, recovery compacts
	// nothing and replays only the short live WAL.
	m2 := segment.Manifest{NextSeq: p.seq.Load() + 1, WAL: newWAL, Segments: refs}
	if err := segment.WriteManifest(p.fs, m2); err != nil {
		for _, r := range refs {
			p.fs.Remove(r.Name)
		}
		return err
	}
	retiredSegs := p.segs
	p.frozen = nil
	p.segs = refs
	for _, n := range frozen {
		p.fs.Remove(n)
	}
	for _, s := range retiredSegs {
		p.fs.Remove(s.Name)
	}
	p.ckpts.Add(1)
	p.ckptNanos.Add(time.Since(start).Nanoseconds())
	return nil
}

// Close shuts the queue down: registry handles are retired, deferred
// reclamation is driven to completion (Quiesce), and — on persistent
// queues — the WAL is flushed, fsynced and closed, so a clean Close
// acknowledges everything. Close is not a checkpoint; call Checkpoint first
// to compact recovery cost. After Close, error-returning operations return
// ErrClosed and error-less ones panic with it. A second Close returns
// ErrClosed.
//
// Close must not run concurrently with queue operations (the Quiesce
// contract); explicit Handles should be closed first.
func (q *Queue[V]) Close() error {
	if q.closed.Swap(true) {
		return ErrClosed
	}
	q.freeMu.Lock()
	hs := q.freeHandles
	q.freeHandles = nil
	q.freeMu.Unlock()
	for _, h := range hs {
		h.h.Close()
	}
	q.q.Quiesce()
	if q.p == nil {
		return nil
	}
	p := q.p
	// Stop the scheduler before taking ckptMu: an in-flight automatic
	// checkpoint holds the mutex and Stop waits for it to finish.
	if p.sched != nil {
		p.sched.Stop()
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	p.closed = true
	return p.log.Close()
}

// PersistStats returns a snapshot of the durability counters; the zero
// PersistStats on a queue created by New.
func (q *Queue[V]) PersistStats() PersistStats {
	p := q.p
	if p == nil {
		return PersistStats{}
	}
	ws := p.log.Stats()
	p.ckptMu.Lock()
	nsegs := len(p.segs)
	nfrozen := len(p.frozen)
	walBase := p.walBase
	rec := p.recovery
	p.ckptMu.Unlock()
	st := PersistStats{
		WALAppends:     ws.Appends,
		WALBytes:       ws.Bytes,
		WALFsyncs:      ws.Fsyncs,
		WALSyncWaits:   ws.SyncWaits,
		WALWrites:      ws.Writes,
		WALTimerFires:  ws.TimerFires,
		LiveWALBytes:   walBase + p.log.FileBytes(),
		FrozenWALs:     nfrozen,
		Checkpoints:    p.ckpts.Load(),
		CheckpointTime: time.Duration(p.ckptNanos.Load()),
		Segments:       nsegs,
		NextSeq:        p.seq.Load() + 1,
		Recovery:       rec,
	}
	if p.sched != nil {
		ss := p.sched.Stats()
		st.AutoCheckpoints = ss.Runs
		st.AutoCheckpointFailures = ss.Failures
		st.OrphansRemoved = ss.OrphansRemoved
	}
	return st
}

// createEmpty creates name as an empty durable file.
func createEmpty(fsys walfault.FS, name string) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ordName formats the n-th file of a kind: "wal-000001", "seg-000042".
func ordName(prefix string, n uint64) string {
	return fmt.Sprintf("%s-%06d", prefix, n)
}

// ordOf parses the ordinal back out of an ordName-shaped name (0 if the
// name was produced elsewhere — the counters then restart above the rest).
func ordOf(name string) uint64 {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseUint(name[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}
