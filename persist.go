package klsm

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"klsm/internal/segment"
	"klsm/internal/wal"
	"klsm/internal/walfault"
)

// Durability errors. Both corruption errors are aliases of the internal
// sentinels, so errors.Is works across the package boundary.
var (
	// ErrClosed reports an operation on a closed queue. Error-returning
	// operations (Sync, Checkpoint, Close) return it; error-less operations
	// (Insert, TryDeleteMin, ...) panic with it, like other use-after-finish
	// misuse in the standard library.
	ErrClosed = errors.New("klsm: queue closed")
	// ErrNotPersistent reports a durability operation on a queue created by
	// New rather than Open.
	ErrNotPersistent = errors.New("klsm: queue has no persistence (created by New, not Open)")
	// ErrCorruptWAL reports provable mid-log corruption in the write-ahead
	// log: an interior record is damaged while later records are intact.
	// Open refuses to recover past it — silently dropping the record would
	// un-acknowledge an insert whose fsync succeeded. (A damaged *final*
	// record is a torn crash artifact, truncated silently; see Open.)
	ErrCorruptWAL = wal.ErrCorrupt
	// ErrCorruptCheckpoint reports a damaged checkpoint artifact: a segment
	// file or the MANIFEST fails its checksum or structural validation.
	ErrCorruptCheckpoint = segment.ErrCorrupt
)

// ckptChunk caps the entries per checkpoint segment file, so recovery loads
// each segment as one reasonably-sized pre-sorted block publication.
const ckptChunk = 128 << 10

// RecoveryStats describes what Open found and rebuilt.
type RecoveryStats struct {
	// Recovered is false when Open initialized a fresh directory.
	Recovered bool
	// SegmentItems counts items loaded from checkpoint segments (after
	// cancelling WAL-logged deletes).
	SegmentItems int64
	// WALRecords counts records replayed from the WAL tail.
	WALRecords int64
	// WALInserts counts WAL-tail inserts that survived (were re-applied).
	WALInserts int64
	// WALDeletes counts WAL-tail delete records.
	WALDeletes int64
	// UnknownDeletes counts delete records whose insert appeared in neither
	// the WAL nor any segment. They are counted, not fatal: a crash between
	// a checkpoint's segment fsync and its WAL switch cannot produce one,
	// but a WAL truncated by an operator can.
	UnknownDeletes int64
	// TornBytes is the length of the torn WAL tail Open truncated (bytes
	// past the last complete record — never acknowledged, by construction).
	TornBytes int64
}

// PersistStats is a snapshot of the durability layer's counters.
type PersistStats struct {
	// WALAppends, WALBytes and WALFsyncs count records appended, framed
	// bytes written and group-commit fsyncs on the live WAL since Open.
	WALAppends int64
	// WALBytes counts framed bytes written to the live WAL.
	WALBytes int64
	// WALFsyncs counts fsyncs issued on the live WAL.
	WALFsyncs int64
	// WALSyncWaits counts explicit Sync calls that had to wait for the
	// group-commit writer.
	WALSyncWaits int64
	// Checkpoints counts completed Checkpoint calls and CheckpointTime their
	// cumulative duration.
	Checkpoints int64
	// CheckpointTime is the cumulative wall time spent in Checkpoint.
	CheckpointTime time.Duration
	// Segments is the number of live checkpoint segment files.
	Segments int
	// NextSeq is the next unassigned durability sequence number.
	NextSeq uint64
	// Recovery describes what Open found.
	Recovery RecoveryStats
}

// persister is the durability state of a queue created by Open.
type persister[V any] struct {
	fs    walfault.FS
	dir   string
	codec ValueCodec[V]
	wopts wal.Options

	// log is the live WAL; swapped by Checkpoint. Atomic so the (quiescent
	// by contract, but race-detector-visible) op path reads it safely.
	log atomic.Pointer[wal.Log]
	// seq is the last assigned durability sequence number.
	seq atomic.Uint64

	// ckptMu serializes Checkpoint and Close against each other and guards
	// the fields below.
	ckptMu   sync.Mutex
	walName  string
	segs     []segment.Ref
	walOrd   uint64 // ordinal for the next WAL file name
	segOrd   uint64 // ordinal for the next segment file name
	recovery RecoveryStats

	ckpts     atomic.Int64
	ckptNanos atomic.Int64
}

// Open opens (or initializes) a persistent queue rooted at directory dir.
// codec serializes the payloads; opts accepts every New option plus the
// durability options (WithSyncEvery, WithSyncInterval, WithWALBuffer).
//
// On an existing directory Open recovers: it loads the checkpoint segments
// named by the MANIFEST, replays the WAL tail (re-applying inserts whose
// delete was never logged, cancelling the rest), truncates a torn final
// record, and resumes appending to the same WAL. Acknowledged operations —
// those covered by a Sync (or SyncEvery/SyncInterval group commit) that
// returned before the crash — survive exactly once. Unacknowledged ones may
// or may not, exactly like any write-behind log. Provable mid-log damage
// refuses with ErrCorruptWAL or ErrCorruptCheckpoint rather than silently
// recovering a partial queue.
func Open[V any](dir string, codec ValueCodec[V], opts ...Option) (*Queue[V], error) {
	fsys, err := walfault.OS(dir)
	if err != nil {
		return nil, err
	}
	return openFS(fsys, dir, codec, opts...)
}

// openFS is Open over an abstract filesystem — the crash-injection tests
// call it with a walfault.MemFS.
func openFS[V any](fsys walfault.FS, dir string, codec ValueCodec[V], opts ...Option) (*Queue[V], error) {
	if codec == nil {
		return nil, errors.New("klsm: Open requires a ValueCodec")
	}
	o := resolveOptions(opts)
	p := &persister[V]{
		fs:    fsys,
		dir:   dir,
		codec: codec,
		wopts: wal.Options{SyncEvery: o.syncEvery, SyncInterval: o.syncInterval, BufferCap: o.walBuffer},
	}

	m, err := segment.ReadManifest(fsys)
	switch {
	case err == nil:
		p.recovery.Recovered = true
	case errors.Is(err, fs.ErrNotExist):
		// Fresh directory: create an empty WAL, then publish the manifest
		// naming it. A crash between the two leaves an orphan WAL and no
		// manifest — the next Open simply initializes again.
		m = segment.Manifest{NextSeq: 1, WAL: ordName("wal", 1)}
		if err := createEmpty(fsys, m.WAL); err != nil {
			return nil, err
		}
		if err := segment.WriteManifest(fsys, m); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}

	// Scan the WAL tail before touching segments: deletes logged there
	// cancel items wherever they live. Records are appended in operation
	// order into one file, so a durable delete implies its insert is durable
	// too — in this WAL or in a segment.
	walData, err := fsys.ReadFile(m.WAL)
	if err != nil {
		return nil, fmt.Errorf("klsm: manifest names missing WAL %s: %w", m.WAL, err)
	}
	var inserts []wal.Op
	deleted := make(map[uint64]bool) // seq -> matched to its insert yet?
	maxSeq := uint64(0)
	res, err := wal.Scan(walData, func(op wal.Op) {
		if op.Seq > maxSeq {
			maxSeq = op.Seq
		}
		if op.Delete {
			deleted[op.Seq] = false
			p.recovery.WALDeletes++
		} else {
			inserts = append(inserts, op)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("klsm: %s: %w", m.WAL, err)
	}
	p.recovery.WALRecords = int64(res.Records)
	p.recovery.TornBytes = int64(len(walData)) - res.GoodLen

	q := &Queue[V]{q: newCoreQueue[V](o, nil)}
	q.p = p
	lh := q.q.NewHandle() // core-level loader handle: bypasses WAL logging

	// Load each checkpoint segment as one pre-sorted batch, skipping items
	// whose delete the WAL logged.
	var keys, seqs []uint64
	var vals []V
	for _, ref := range m.Segments {
		entries, err := segment.Read(fsys, ref.Name)
		if err != nil {
			return nil, fmt.Errorf("klsm: %w", err)
		}
		if int64(len(entries)) != ref.Count {
			return nil, fmt.Errorf("%w: klsm: segment %s holds %d entries, manifest says %d",
				ErrCorruptCheckpoint, ref.Name, len(entries), ref.Count)
		}
		keys, vals, seqs = keys[:0], vals[:0], seqs[:0]
		for _, e := range entries {
			if e.Seq > maxSeq {
				maxSeq = e.Seq
			}
			if _, dead := deleted[e.Seq]; dead {
				deleted[e.Seq] = true
				continue
			}
			v, err := codec.Decode(e.Value)
			if err != nil {
				return nil, fmt.Errorf("klsm: segment %s seq %d: decoding value: %w", ref.Name, e.Seq, err)
			}
			keys = append(keys, e.Key)
			vals = append(vals, v)
			seqs = append(seqs, e.Seq)
		}
		lh.InsertBatchSeqs(keys, vals, seqs)
		p.recovery.SegmentItems += int64(len(keys))
	}

	// Re-apply the WAL-tail inserts that were never deleted, as one batch.
	keys, vals, seqs = keys[:0], vals[:0], seqs[:0]
	for _, op := range inserts {
		if _, dead := deleted[op.Seq]; dead {
			deleted[op.Seq] = true
			continue
		}
		v, err := codec.Decode(op.Value)
		if err != nil {
			return nil, fmt.Errorf("klsm: %s seq %d: decoding value: %w", m.WAL, op.Seq, err)
		}
		keys = append(keys, op.Key)
		vals = append(vals, v)
		seqs = append(seqs, op.Seq)
	}
	lh.InsertBatchSeqs(keys, vals, seqs)
	p.recovery.WALInserts = int64(len(keys))
	for _, matched := range deleted {
		if !matched {
			p.recovery.UnknownDeletes++
		}
	}
	lh.Close()

	// Drop the torn tail so appends resume at the last complete record, and
	// sweep artifacts the manifest does not name (half-written segments or
	// WALs from an interrupted checkpoint, a stale MANIFEST.tmp).
	if res.Torn {
		if err := fsys.Truncate(m.WAL, res.GoodLen); err != nil {
			return nil, err
		}
	}
	live := map[string]bool{segment.ManifestName: true, m.WAL: true}
	p.walOrd = ordOf(m.WAL) + 1
	for _, ref := range m.Segments {
		live[ref.Name] = true
		if n := ordOf(ref.Name); n >= p.segOrd {
			p.segOrd = n + 1
		}
	}
	if p.segOrd == 0 {
		p.segOrd = 1
	}
	if names, err := fsys.List(); err == nil {
		for _, n := range names {
			if !live[n] {
				fsys.Remove(n)
			}
		}
	}

	if m.NextSeq > 0 && m.NextSeq-1 > maxSeq {
		maxSeq = m.NextSeq - 1
	}
	p.seq.Store(maxSeq)
	p.walName = m.WAL
	p.segs = m.Segments

	l, err := wal.Open(fsys, m.WAL, p.wopts)
	if err != nil {
		return nil, err
	}
	p.log.Store(l)
	return q, nil
}

// appendInsert encodes value into scratch, appends the insert record, and
// returns the (possibly grown) scratch for reuse. WAL errors are sticky and
// deliberately not surfaced here — the insert still lands in memory, and the
// failure reports on the next Sync, Checkpoint or Close, like any
// write-behind log.
func (p *persister[V]) appendInsert(scratch []byte, key uint64, value V, seq uint64) []byte {
	buf, err := p.codec.Encode(scratch, value)
	if err != nil {
		panic(fmt.Errorf("klsm: value codec failed on insert: %w", err))
	}
	p.log.Load().Append(wal.Op{Seq: seq, Key: key, Value: buf})
	return buf
}

// appendDelete logs the consumption of the insert with the given seq.
func (p *persister[V]) appendDelete(key, seq uint64) {
	p.log.Load().Append(wal.Op{Delete: true, Seq: seq, Key: key})
}

// Sync blocks until every operation performed before the call is durable,
// and returns the WAL's sticky error if the log has failed. An operation is
// acknowledged — guaranteed to survive recovery exactly once — precisely
// when a Sync covering it has returned nil (group commit acknowledges
// batches: one fsync covers every operation since the previous one). On a
// queue created by New, Sync is a no-op.
func (q *Queue[V]) Sync() error {
	if q.closed.Load() {
		return ErrClosed
	}
	if q.p == nil {
		return nil
	}
	return q.p.log.Load().Sync()
}

// Checkpoint compacts the durability state: it snapshots every live item
// into sorted segment files, publishes a new MANIFEST naming them plus a
// fresh empty WAL, and deletes the old WAL and segments. Recovery cost
// thereafter is proportional to the live item count plus the short new WAL,
// not to the operation history.
//
// Checkpoint runs the Quiesce barrier and therefore must not run
// concurrently with any queue operation (same contract as Quiesce). It
// returns ErrNotPersistent on a queue created by New and ErrClosed after
// Close. A crash at any point during Checkpoint is safe: the MANIFEST is
// published by atomic rename, so recovery sees either the complete old
// state or the complete new one, and sweeps the loser's files.
func (q *Queue[V]) Checkpoint() error {
	p := q.p
	if p == nil {
		return ErrNotPersistent
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	if q.closed.Load() {
		return ErrClosed
	}
	start := time.Now()
	old := p.log.Load()
	// Make the WAL prefix durable first: if we crash mid-checkpoint, the
	// old manifest still rules and every acknowledged op replays from it.
	if err := old.Sync(); err != nil {
		return err
	}
	q.q.Quiesce()

	var entries []segment.Entry
	var encErr error
	q.q.SnapshotLive(func(key uint64, seq uint64, value V) {
		if encErr != nil {
			return
		}
		b, err := p.codec.Encode(nil, value)
		if err != nil {
			encErr = fmt.Errorf("klsm: value codec failed during checkpoint: %w", err)
			return
		}
		entries = append(entries, segment.Entry{Key: key, Seq: seq, Value: b})
	})
	if encErr != nil {
		return encErr
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Key != entries[j].Key {
			return entries[i].Key < entries[j].Key
		}
		return entries[i].Seq < entries[j].Seq
	})

	// Stage the new state: segment files and an empty WAL, all fsynced,
	// none named by the (still-old) MANIFEST yet.
	var refs []segment.Ref
	var staged []string
	abort := func(err error) error {
		for _, n := range staged {
			p.fs.Remove(n)
		}
		return err
	}
	for off := 0; off < len(entries); off += ckptChunk {
		chunk := entries[off:min(off+ckptChunk, len(entries))]
		name := ordName("seg", p.segOrd)
		p.segOrd++
		if err := segment.Write(p.fs, name, chunk); err != nil {
			return abort(err)
		}
		staged = append(staged, name)
		refs = append(refs, segment.Ref{Name: name, Count: int64(len(chunk))})
	}
	newWAL := ordName("wal", p.walOrd)
	p.walOrd++
	if err := createEmpty(p.fs, newWAL); err != nil {
		return abort(err)
	}
	staged = append(staged, newWAL)
	nl, err := wal.Open(p.fs, newWAL, p.wopts)
	if err != nil {
		return abort(err)
	}

	// The commit point: after this rename is durable, recovery uses the new
	// state; before it, the old. Nothing in between exists.
	m := segment.Manifest{NextSeq: p.seq.Load() + 1, WAL: newWAL, Segments: refs}
	if err := segment.WriteManifest(p.fs, m); err != nil {
		nl.Close()
		return abort(err)
	}

	p.log.Store(nl)
	closeErr := old.Close()
	p.fs.Remove(p.walName)
	for _, s := range p.segs {
		p.fs.Remove(s.Name)
	}
	p.walName = newWAL
	p.segs = refs
	p.ckpts.Add(1)
	p.ckptNanos.Add(time.Since(start).Nanoseconds())
	return closeErr
}

// Close shuts the queue down: registry handles are retired, deferred
// reclamation is driven to completion (Quiesce), and — on persistent
// queues — the WAL is flushed, fsynced and closed, so a clean Close
// acknowledges everything. Close is not a checkpoint; call Checkpoint first
// to compact recovery cost. After Close, error-returning operations return
// ErrClosed and error-less ones panic with it. A second Close returns
// ErrClosed.
//
// Close must not run concurrently with queue operations (the Quiesce
// contract); explicit Handles should be closed first.
func (q *Queue[V]) Close() error {
	if q.closed.Swap(true) {
		return ErrClosed
	}
	q.freeMu.Lock()
	hs := q.freeHandles
	q.freeHandles = nil
	q.freeMu.Unlock()
	for _, h := range hs {
		h.h.Close()
	}
	q.q.Quiesce()
	if q.p == nil {
		return nil
	}
	p := q.p
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	return p.log.Load().Close()
}

// PersistStats returns a snapshot of the durability counters; the zero
// PersistStats on a queue created by New.
func (q *Queue[V]) PersistStats() PersistStats {
	p := q.p
	if p == nil {
		return PersistStats{}
	}
	ws := p.log.Load().Stats()
	p.ckptMu.Lock()
	nsegs := len(p.segs)
	rec := p.recovery
	p.ckptMu.Unlock()
	return PersistStats{
		WALAppends:     ws.Appends,
		WALBytes:       ws.Bytes,
		WALFsyncs:      ws.Fsyncs,
		WALSyncWaits:   ws.SyncWaits,
		Checkpoints:    p.ckpts.Load(),
		CheckpointTime: time.Duration(p.ckptNanos.Load()),
		Segments:       nsegs,
		NextSeq:        p.seq.Load() + 1,
		Recovery:       rec,
	}
}

// createEmpty creates name as an empty durable file.
func createEmpty(fsys walfault.FS, name string) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ordName formats the n-th file of a kind: "wal-000001", "seg-000042".
func ordName(prefix string, n uint64) string {
	return fmt.Sprintf("%s-%06d", prefix, n)
}

// ordOf parses the ordinal back out of an ordName-shaped name (0 if the
// name was produced elsewhere — the counters then restart above the rest).
func ordOf(name string) uint64 {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseUint(name[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}
