package klsm

import (
	"testing"
	"time"
)

// BenchmarkPersistentInsert measures the mutator-visible cost of a logged
// insert against a real on-disk WAL with the group-commit timer at its
// default: the append encodes an unsealed frame under the buffer mutex and
// returns, while the writer goroutine seals CRCs, coalesces and writes
// behind it. This is the single-threaded half of the E17/E19 overhead
// story; profile it (-cpuprofile) to see the mutator/writer CPU split.
func BenchmarkPersistentInsert(b *testing.B) {
	q, err := Open[struct{}](b.TempDir(), NoValue{},
		WithSyncInterval(2*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	defer q.Close()
	h := q.NewHandle()
	defer h.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Insert(uint64(i), struct{}{})
	}
	b.StopTimer()
	if err := q.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkPersistentMix is the E19 single-core shape in miniature: a 50/50
// insert/delete-min mix on a persistent queue, every op logged.
func BenchmarkPersistentMix(b *testing.B) {
	q, err := Open[struct{}](b.TempDir(), NoValue{},
		WithSyncInterval(2*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	defer q.Close()
	h := q.NewHandle()
	defer h.Close()
	for i := 0; i < 1024; i++ {
		h.Insert(uint64(i), struct{}{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			h.Insert(uint64(1024+i), struct{}{})
		} else {
			h.TryDeleteMin()
		}
	}
	b.StopTimer()
	if err := q.Sync(); err != nil {
		b.Fatal(err)
	}
}
