package klsm

import (
	"testing"

	"klsm/internal/xrand"
)

// TestMinCachingToggleSemantics: WithMinCaching(false) must change only the
// cost profile, never observable behavior — same keys, same payloads, same
// success/failure pattern, op for op, through a single handle (where both
// configurations are exact thanks to local ordering).
func TestMinCachingToggleSemantics(t *testing.T) {
	on := New[int]()
	off := New[int](WithMinCaching(false))
	hOn, hOff := on.NewHandle(), off.NewHandle()
	rng := xrand.NewSeeded(23)
	for op := 0; op < 20_000; op++ {
		if rng.Bool() {
			k := rng.Uint64n(1 << 30)
			hOn.Insert(k, int(k))
			hOff.Insert(k, int(k))
		} else {
			k1, v1, ok1 := hOn.TryDeleteMin()
			k2, v2, ok2 := hOff.TryDeleteMin()
			if ok1 != ok2 || k1 != k2 || v1 != v2 {
				t.Fatalf("op %d: cached (%d,%d,%v) != uncached (%d,%d,%v)",
					op, k1, v1, ok1, k2, v2, ok2)
			}
		}
	}
	if on.Size() != off.Size() {
		t.Fatalf("Size %d != %d", on.Size(), off.Size())
	}
	// Drain both to empty: the tail ends of the sequences must agree too.
	for {
		k1, _, ok1 := hOn.TryDeleteMin()
		k2, _, ok2 := hOff.TryDeleteMin()
		if ok1 != ok2 {
			t.Fatalf("drain: cached ok=%v, uncached ok=%v", ok1, ok2)
		}
		if !ok1 {
			return
		}
		if k1 != k2 {
			t.Fatalf("drain: cached key %d != uncached key %d", k1, k2)
		}
	}
}
