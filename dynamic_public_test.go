package klsm

import (
	"sort"
	"testing"
)

func TestSetRelaxationPublic(t *testing.T) {
	q := New[int](WithRelaxation(4096))
	h := q.NewHandle()
	for i := uint64(0); i < 500; i++ {
		h.Insert(500-i, 0)
	}
	q.SetRelaxation(0)
	if q.K() != 0 {
		t.Fatalf("K = %d", q.K())
	}
	// One insert applies the tightened bound to this handle.
	h.Insert(1000, 0)
	var got []uint64
	for {
		k, _, ok := h.TryDeleteMin()
		if !ok {
			break
		}
		got = append(got, k)
	}
	if len(got) != 501 {
		t.Fatalf("drained %d of 501", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("single-handle drain with k=0 not sorted")
	}
	if q.Rho() != 0 {
		t.Fatalf("Rho = %d with k=0", q.Rho())
	}
}

func TestSetRelaxationDistributedNoop(t *testing.T) {
	q := New[int](WithDistributedOnly())
	q.SetRelaxation(123) // documented no-op; must not panic
	h := q.NewHandle()
	h.Insert(9, 0)
	if k, _, ok := h.TryDeleteMin(); !ok || k != 9 {
		t.Fatalf("DLSM after SetRelaxation: %d %v", k, ok)
	}
}
